//! Trajectory-driven load generator.
//!
//! Each client is one blocking-socket session replaying a
//! `world::trajectory` walk of the same scene the server built (same
//! game, same seed), so the pose stream — and therefore the store's
//! hit pattern — matches what a real player cohort of that game genre
//! produces. Client-side pacing reuses the FI scenario catalog
//! ([`coterie_net::NetScenario`]): a lossy scenario drops poses (the
//! frame interval passes with no request, as a stalled uplink would),
//! which exercises the server's idle/level-triggered paths, not just
//! its saturation path.
//!
//! The report carries a full [`LogHistogram`] of wall-clock
//! pose→frame round-trip latency — the measured equivalent of the
//! simulator's per-frame net stage — plus protocol-health counters the
//! integration tests assert on.

use crate::service::quality_from_wire;
use crate::stream::Endpoint;
use bytes::Bytes;
use coterie_codec::{EncodedFrame, Encoder};
use coterie_net::wire::{FrameAssembler, WireMessage, PROTO_VERSION};
use coterie_net::{FiChannel, NetScenario};
use coterie_telemetry::LogHistogram;
use coterie_world::{GameId, GameSpec, Scene, Trajectory};
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nominal display interval the clients pace against, ms.
pub const FRAME_INTERVAL_MS: f64 = 16.7;

/// Absolute-deadline frame pacing.
///
/// Frame `i` is due at `start + i·interval` — a fixed schedule, like a
/// display's vsync train. A relative `sleep(interval)` after each frame
/// instead re-anchors the schedule every iteration, so round-trip time,
/// sleep overshoot and skipped intervals all accumulate: after `n`
/// frames the client runs `n·(work + overshoot)` behind the display
/// clock it claims to model. Against the fixed schedule, per-iteration
/// noise only delays the frame it hits; the next wait re-synchronizes.
pub struct Pacer {
    start: Instant,
    interval_ns: u64,
}

impl Pacer {
    /// A pacer whose frame 0 is due immediately.
    pub fn new(interval_ms: f64) -> Pacer {
        Pacer {
            start: Instant::now(),
            interval_ns: (interval_ms * 1_000_000.0) as u64,
        }
    }

    /// The absolute deadline of frame `i`.
    pub fn deadline(&self, i: u64) -> Instant {
        self.start + Duration::from_nanos(i.saturating_mul(self.interval_ns))
    }

    /// Blocks until frame `i` is due. Returns how late the wakeup ran
    /// in ms (0 when the sleep ended on schedule); a deadline already
    /// in the past returns immediately without shifting the schedule.
    pub fn wait_for(&self, i: u64) -> f64 {
        let deadline = self.deadline(i);
        let now = Instant::now();
        if now < deadline {
            std::thread::sleep(deadline - now);
        }
        Instant::now()
            .saturating_duration_since(deadline)
            .as_secs_f64()
            * 1000.0
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to hit.
    pub endpoint: Endpoint,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Poses each client sends (upper bound; lossy scenarios skip
    /// some).
    pub frames_per_client: u64,
    /// Game every session joins.
    pub game: GameId,
    /// Rooms the clients spread across (round-robin).
    pub rooms: u32,
    /// Client-side FI pacing scenario.
    pub net: NetScenario,
    /// World seed — must match the server's for trajectory-consistent
    /// traffic.
    pub seed: u64,
    /// Pace poses at the display interval (true) or as fast as the
    /// server answers (false, the saturation mode).
    pub realtime: bool,
    /// Churn mode: at this pose index each client drops its socket
    /// without a `Bye` (simulating a dead link) and reconnects with
    /// the `Resume` token from its Welcome. `None` (the default) keeps
    /// the uninterrupted session flow.
    pub reconnect_at: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            endpoint: Endpoint::Uds(std::env::temp_dir().join("coterie-serve.sock")),
            clients: 2,
            frames_per_client: 120,
            game: GameId::VikingVillage,
            rooms: 1,
            net: NetScenario::None,
            seed: 42,
            realtime: false,
            reconnect_at: None,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions launched.
    pub sessions: usize,
    /// Sessions that completed the full protocol (welcome → goodbye).
    pub sessions_completed: usize,
    /// Poses sent.
    pub poses_sent: u64,
    /// Frames received.
    pub frames_received: u64,
    /// Frames answered from the shared store (server-reported flag).
    pub store_hits: u64,
    /// Poses skipped because the FI scenario declared the interval
    /// lost.
    pub poses_lost: u64,
    /// Degrade notices observed.
    pub degrades_seen: u64,
    /// Frames whose payload failed to decode.
    pub decode_failures: u64,
    /// Protocol violations observed client-side.
    pub protocol_errors: u64,
    /// Payload bytes received (wire framing included).
    pub bytes_received: u64,
    /// Sessions that dropped their socket and resumed by token.
    pub sessions_resumed: u64,
    /// `Resume` attempts the server rejected.
    pub resume_rejects: u64,
    /// Resumed sessions whose first post-resume frame came back at a
    /// different quality scale than the last pre-drop frame.
    pub resume_scale_mismatches: u64,
    /// Wall-clock pose→frame round-trip latency, ms.
    pub latency: LogHistogram,
    /// Wall-clock run duration, seconds.
    pub elapsed_s: f64,
}

impl LoadReport {
    fn merge(&mut self, other: &LoadReport) {
        self.sessions += other.sessions;
        self.sessions_completed += other.sessions_completed;
        self.poses_sent += other.poses_sent;
        self.frames_received += other.frames_received;
        self.store_hits += other.store_hits;
        self.poses_lost += other.poses_lost;
        self.degrades_seen += other.degrades_seen;
        self.decode_failures += other.decode_failures;
        self.protocol_errors += other.protocol_errors;
        self.bytes_received += other.bytes_received;
        self.sessions_resumed += other.sessions_resumed;
        self.resume_rejects += other.resume_rejects;
        self.resume_scale_mismatches += other.resume_scale_mismatches;
        self.latency.merge(&other.latency);
    }

    fn empty() -> LoadReport {
        LoadReport {
            sessions: 0,
            sessions_completed: 0,
            poses_sent: 0,
            frames_received: 0,
            store_hits: 0,
            poses_lost: 0,
            degrades_seen: 0,
            decode_failures: 0,
            protocol_errors: 0,
            bytes_received: 0,
            sessions_resumed: 0,
            resume_rejects: 0,
            resume_scale_mismatches: 0,
            latency: LogHistogram::new(),
            elapsed_s: 0.0,
        }
    }

    /// Received-frame throughput, bytes/s.
    pub fn egress_bytes_per_s(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.bytes_received as f64 / self.elapsed_s
        }
    }

    /// One-line health summary (greppable by CI smoke). Runs without
    /// resume traffic print the historical line byte for byte; churn
    /// runs append the resume segment.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "loadgen ok: {}/{} sessions clean, {} poses, {} frames ({} store hits), \
             {} lost, {} degrades, {} protocol errors, p99 {:.2} ms, {:.1} KB/s",
            self.sessions_completed,
            self.sessions,
            self.poses_sent,
            self.frames_received,
            self.store_hits,
            self.poses_lost,
            self.degrades_seen,
            self.protocol_errors,
            self.latency.quantile(0.99),
            self.egress_bytes_per_s() / 1000.0,
        );
        if self.sessions_resumed + self.resume_rejects > 0 {
            line.push_str(&format!(
                ", {} resumed ({} rejects, {} scale mismatches)",
                self.sessions_resumed, self.resume_rejects, self.resume_scale_mismatches
            ));
        }
        line
    }
}

/// Runs the configured load and blocks until every session finishes.
pub fn run(config: &LoadConfig) -> LoadReport {
    let spec = GameSpec::for_game(config.game);
    let scene = Arc::new(spec.build_scene(config.seed));
    let started = Instant::now();
    let mut merged = LoadReport::empty();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.clients);
        for client in 0..config.clients {
            let scene = scene.clone();
            let spec = spec.clone();
            let config = config.clone();
            handles.push(scope.spawn(move || run_client(&config, client, &spec, &scene)));
        }
        for h in handles {
            if let Ok(report) = h.join() {
                merged.merge(&report);
            }
        }
    });

    merged.elapsed_s = started.elapsed().as_secs_f64();
    merged
}

fn run_client(config: &LoadConfig, client: usize, spec: &GameSpec, scene: &Scene) -> LoadReport {
    let mut report = LoadReport::empty();
    report.sessions = 1;

    let Ok(mut stream) = config.endpoint.connect() else {
        report.protocol_errors += 1;
        return report;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));

    let room = config.rooms.max(1);
    let room = (client as u32) % room;
    let peers_in_room = config.clients.div_ceil(room.max(1) as usize).max(1);
    let duration_s =
        (config.frames_per_client as f64 * FRAME_INTERVAL_MS / 1000.0).max(FRAME_INTERVAL_MS);
    let traj = Trajectory::generate(
        scene,
        spec,
        client % peers_in_room,
        peers_in_room,
        duration_s,
        config.seed.wrapping_add(client as u64),
    );
    let mut fi = FiChannel::new(config.net, config.seed.wrapping_add(0x5EED + client as u64));
    let mut asm = FrameAssembler::new();

    let hello = WireMessage::Hello {
        proto: PROTO_VERSION,
        game: config.game,
        room,
        seed: config.seed,
    };
    if stream.write_all(&hello.encode_frame()).is_err() {
        report.protocol_errors += 1;
        return report;
    }
    let mut resume_token = match read_message(&mut stream, &mut asm, &mut report) {
        Some(WireMessage::Welcome { token, .. }) => token,
        _ => {
            report.protocol_errors += 1;
            return report;
        }
    };

    let pacer = config.realtime.then(|| Pacer::new(FRAME_INTERVAL_MS));
    let mut last_scale_pm: u16 = 1000;
    let mut check_scale_after_resume = false;
    for i in 0..config.frames_per_client {
        // Churn: drop the socket mid-run (no `Bye`) and come back with
        // the token — the reconnect path a flaky home link exercises.
        if config.reconnect_at == Some(i) {
            if let Some(token) = resume_token {
                drop(stream);
                // Give the server a poll tick to see the hangup and
                // park the session before the Resume arrives.
                std::thread::sleep(Duration::from_millis(60));
                let Ok(s) = config.endpoint.connect() else {
                    report.protocol_errors += 1;
                    return report;
                };
                stream = s;
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                asm = FrameAssembler::new();
                let resume = WireMessage::Resume {
                    proto: PROTO_VERSION,
                    token,
                };
                if stream.write_all(&resume.encode_frame()).is_err() {
                    report.protocol_errors += 1;
                    return report;
                }
                match read_message(&mut stream, &mut asm, &mut report) {
                    Some(WireMessage::Welcome { token, .. }) => {
                        report.sessions_resumed += 1;
                        resume_token = token;
                        check_scale_after_resume = true;
                    }
                    Some(WireMessage::ResumeReject { .. }) => {
                        report.resume_rejects += 1;
                        return report;
                    }
                    _ => {
                        report.protocol_errors += 1;
                        return report;
                    }
                }
            }
        }
        let t_ms = i as f64 * FRAME_INTERVAL_MS;
        // Wait on the absolute schedule before the FI roll so lost
        // intervals still consume display time instead of compressing
        // the pose train.
        if let Some(pacer) = &pacer {
            pacer.wait_for(i);
        }
        if fi.send_at(t_ms).latency_ms().is_none() {
            // FI interval lost: the pose never leaves the device.
            report.poses_lost += 1;
            continue;
        }
        let pos = traj.position(t_ms / 1000.0);
        let yaw = traj.heading(t_ms / 1000.0);
        let pose = WireMessage::Pose {
            seq: i,
            t_ms,
            x: pos.x,
            z: pos.z,
            yaw,
        };
        let sent_at = Instant::now();
        if stream.write_all(&pose.encode_frame()).is_err() {
            report.protocol_errors += 1;
            return report;
        }
        report.poses_sent += 1;

        // Drain messages until this pose's frame arrives (degrade
        // notices interleave).
        loop {
            match read_message(&mut stream, &mut asm, &mut report) {
                Some(WireMessage::Frame {
                    seq,
                    width,
                    height,
                    quality,
                    store_hit,
                    scale_pm,
                    payload,
                }) => {
                    report
                        .latency
                        .record(sent_at.elapsed().as_secs_f64() * 1000.0);
                    report.frames_received += 1;
                    if check_scale_after_resume {
                        check_scale_after_resume = false;
                        if scale_pm != last_scale_pm {
                            report.resume_scale_mismatches += 1;
                        }
                    }
                    last_scale_pm = scale_pm;
                    if store_hit {
                        report.store_hits += 1;
                    }
                    let encoded = EncodedFrame {
                        width,
                        height,
                        quality: quality_from_wire(quality),
                        payload: Bytes::from_vec(payload),
                    };
                    let decoder = Encoder::new(encoded.quality);
                    if decoder.decode(&encoded).is_err() {
                        report.decode_failures += 1;
                    }
                    if seq != i {
                        report.protocol_errors += 1;
                    }
                    break;
                }
                Some(WireMessage::Degrade { .. }) => {
                    report.degrades_seen += 1;
                    // A notified scale change between drop and resume is
                    // a legitimate transition, not a lost-state bug.
                    check_scale_after_resume = false;
                }
                Some(WireMessage::Goodbye { .. }) | None => {
                    // Server went away mid-session (shutdown drain).
                    return report;
                }
                Some(WireMessage::Error { .. }) => {
                    report.protocol_errors += 1;
                    return report;
                }
                Some(_) => {
                    report.protocol_errors += 1;
                    return report;
                }
            }
        }
    }

    // Clean close: Bye, wait for Goodbye.
    if stream.write_all(&WireMessage::Bye.encode_frame()).is_err() {
        report.protocol_errors += 1;
        return report;
    }
    loop {
        match read_message(&mut stream, &mut asm, &mut report) {
            Some(WireMessage::Goodbye { .. }) => {
                report.sessions_completed += 1;
                return report;
            }
            Some(WireMessage::Degrade { .. }) => report.degrades_seen += 1,
            Some(WireMessage::Frame { .. }) => {
                // A frame still in flight when we said bye.
                report.frames_received += 1;
            }
            Some(_) | None => {
                report.protocol_errors += 1;
                return report;
            }
        }
    }
}

/// Blocking read of the next complete message; counts received bytes.
fn read_message(
    stream: &mut crate::stream::Stream,
    asm: &mut FrameAssembler,
    report: &mut LoadReport,
) -> Option<WireMessage> {
    use std::io::Read as _;
    loop {
        match asm.next_message() {
            Ok(Some(m)) => return Some(m),
            Ok(None) => {}
            Err(_) => {
                report.protocol_errors += 1;
                return None;
            }
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => {
                report.bytes_received += n as u64;
                asm.push(&buf[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_deadlines_form_an_exact_lattice() {
        let p = Pacer::new(FRAME_INTERVAL_MS);
        let step = Duration::from_nanos((FRAME_INTERVAL_MS * 1_000_000.0) as u64);
        assert_eq!(p.deadline(1) - p.deadline(0), step);
        // No per-step float accumulation: frame 1000 sits exactly 1000
        // steps out.
        assert_eq!(p.deadline(1000) - p.deadline(0), step * 1000);
    }

    #[test]
    fn pacer_bounds_drift_under_per_frame_work() {
        // 30 frames at 10 ms with ~4 ms of "work" per frame. The old
        // relative sleep stacked work on top of the interval: >= 30 x
        // (10 + 4) = 420 ms. The absolute schedule absorbs the work
        // inside each interval: ~300 ms, drift bounded by scheduler
        // jitter instead of growing with n.
        const N: u64 = 30;
        const INTERVAL_MS: f64 = 10.0;
        let p = Pacer::new(INTERVAL_MS);
        for i in 0..N {
            p.wait_for(i);
            std::thread::sleep(Duration::from_millis(4));
        }
        let lateness_ms = p.wait_for(N);
        assert!(
            lateness_ms < 60.0,
            "schedule drifted {lateness_ms:.1} ms over {N} frames: \
             per-frame work is leaking into the pacing interval"
        );
    }

    #[test]
    fn pacer_recovers_schedule_after_a_stall() {
        // A 30 ms stall blows through three 10 ms deadlines. The missed
        // waits return immediately (positive lateness) and the next
        // future deadline is honored on the original lattice — the
        // stall does not push the whole schedule back.
        let p = Pacer::new(10.0);
        std::thread::sleep(Duration::from_millis(30));
        assert!(p.wait_for(1) > 0.0, "past deadline must not sleep");
        let lateness = p.wait_for(8);
        assert!(
            lateness < 40.0,
            "frame 8 ran {lateness:.1} ms late: stall shifted the lattice"
        );
    }
}
