//! Property-based tests for the frame cache's invariants.

use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_world::{GridPoint, LeafId, Vec2};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    ix: i32,
    iz: i32,
    leaf: u32,
    near_hash: u64,
    size: u64,
    lookup: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        -40i32..40,
        -40i32..40,
        0u32..4,
        0u64..3,
        1u64..500,
        proptest::bool::ANY,
    )
        .prop_map(|(ix, iz, leaf, near_hash, size, lookup)| Op {
            ix,
            iz,
            leaf,
            near_hash,
            size,
            lookup,
        })
}

fn meta_of(op: &Op) -> FrameMeta {
    FrameMeta {
        grid: GridPoint::new(op.ix, op.iz),
        pos: Vec2::new(op.ix as f64 * 0.25, op.iz as f64 * 0.25),
        leaf: LeafId(op.leaf),
        near_hash: op.near_hash,
    }
}

fn query_of(op: &Op, dist_thresh: f64) -> CacheQuery {
    let m = meta_of(op);
    CacheQuery {
        grid: m.grid,
        pos: m.pos,
        leaf: m.leaf,
        near_hash: m.near_hash,
        dist_thresh,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bytes_accounting_is_exact(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1_000u64..20_000,
        policy_flip in proptest::bool::ANY,
    ) {
        let policy = if policy_flip { EvictionPolicy::Lru } else { EvictionPolicy::Flf };
        let mut cache: FrameCache<u64> = FrameCache::new(CacheConfig {
            capacity_bytes: capacity,
            policy,
            version: CacheVersion::V3,
        });
        let mut inserted = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if op.lookup {
                let _ = cache.lookup(&query_of(op, 1.0));
            } else {
                cache.insert(meta_of(op), FrameSource::SelfPrefetch, i as u64, op.size, Vec2::ZERO);
                inserted += 1;
            }
            // Invariants after every operation.
            prop_assert!(cache.bytes() <= capacity.max(op.size),
                "cache bytes {} exceed capacity {capacity}", cache.bytes());
            prop_assert!(cache.len() as u64 <= inserted);
        }
        let stats = cache.stats();
        let lookups = ops.iter().filter(|o| o.lookup).count() as u64;
        prop_assert_eq!(stats.hits + stats.misses, lookups);
    }

    #[test]
    fn lookup_hit_implies_all_criteria(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        probe in op_strategy(),
        dist_thresh in 0.0f64..5.0,
    ) {
        let mut cache: FrameCache<usize> =
            FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let mut entries = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            cache.insert(meta_of(op), FrameSource::SelfPrefetch, i, 1, Vec2::ZERO);
            entries.push(meta_of(op));
        }
        let q = query_of(&probe, dist_thresh);
        if let Some(&idx) = cache.lookup(&q) {
            let hit = &entries[idx];
            prop_assert_eq!(hit.leaf, q.leaf, "criterion 2 violated");
            prop_assert_eq!(hit.near_hash, q.near_hash, "criterion 3 violated");
            prop_assert!(hit.pos.distance(q.pos) <= dist_thresh + 1e-9,
                "criterion 1 violated: {} > {dist_thresh}", hit.pos.distance(q.pos));
            // And it is the *closest* qualifying entry.
            for e in &entries {
                if e.leaf == q.leaf && e.near_hash == q.near_hash
                    && e.pos.distance(q.pos) <= dist_thresh {
                    prop_assert!(hit.pos.distance(q.pos) <= e.pos.distance(q.pos) + 1e-9);
                }
            }
        } else {
            // A miss means no entry qualifies.
            for e in &entries {
                let qualifies = e.leaf == q.leaf
                    && e.near_hash == q.near_hash
                    && e.pos.distance(q.pos) <= dist_thresh - 1e-9;
                prop_assert!(!qualifies, "missed a qualifying entry at {}", e.pos);
            }
        }
    }

    #[test]
    fn exact_version_only_hits_same_grid_point(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        probe in op_strategy(),
    ) {
        let mut cache: FrameCache<usize> =
            FrameCache::new(CacheConfig::infinite(CacheVersion::V1));
        let mut grids = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            cache.insert(meta_of(op), FrameSource::SelfPrefetch, i, 1, Vec2::ZERO);
            grids.push(meta_of(op).grid);
        }
        let q = query_of(&probe, 100.0);
        let hit = cache.lookup(&q).is_some();
        let exists = grids.contains(&q.grid);
        prop_assert_eq!(hit, exists);
    }

    #[test]
    fn eviction_never_loses_accounting(
        sizes in proptest::collection::vec(1u64..2_000, 1..80),
    ) {
        let mut cache: FrameCache<()> = FrameCache::new(CacheConfig {
            capacity_bytes: 4_000,
            policy: EvictionPolicy::Lru,
            version: CacheVersion::V3,
        });
        for (i, &size) in sizes.iter().enumerate() {
            let op = Op { ix: i as i32, iz: 0, leaf: 0, near_hash: 0, size, lookup: false };
            cache.insert(meta_of(&op), FrameSource::SelfPrefetch, (), size, Vec2::ZERO);
        }
        // Bytes never exceed capacity by more than one oversized entry.
        prop_assert!(cache.bytes() <= 4_000 + 2_000);
        let evicted = cache.stats().evictions as usize;
        prop_assert_eq!(cache.len() + evicted, sizes.len());
    }
}
