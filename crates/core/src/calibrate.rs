//! Offline calibration of the cache-lookup distance threshold (§5.3).
//!
//! For each leaf region the paper binary-searches `dist_thresh` ("e.g.,
//! starting from 32 downwards") until the far-BE frame at a sampled grid
//! point has SSIM > 0.9 with that of another random grid point within
//! `dist_thresh`; the minimum over K sampled points becomes the leaf's
//! threshold. This module performs the same search against the software
//! renderer.
//!
//! ### Resolution note
//!
//! SSIM is resolution-sensitive: a displacement that shifts a far object
//! by 25 pixels at the paper's 3840×2160 shifts it by under 2 pixels at
//! our default 256×128 panorama, inflating SSIM. The calibrator therefore
//! accepts the SSIM threshold as a parameter; experiments use a
//! *resolution-compensated* threshold (documented in DESIGN.md) so the
//! derived `dist_thresh` — and hence cache hit ratios — land in the
//! paper's regime.

use crate::cutoff::CutoffMap;
use coterie_frame::{ssim_with, SsimOptions};
use coterie_render::{RenderFilter, Renderer};
use coterie_world::noise::SmallRng;
use coterie_world::{LeafId, Rect, Scene, Vec2};
use std::collections::HashSet;

/// Binary-searches per-leaf `dist_thresh` values using rendered far-BE
/// frames and SSIM.
#[derive(Debug, Clone)]
pub struct DistThreshCalibrator {
    renderer: Renderer,
    /// SSIM above which two far-BE frames count as interchangeable.
    pub ssim_threshold: f64,
    /// Grid points sampled per leaf (the paper uses K; renders are
    /// expensive, so we default lower).
    pub k_samples: usize,
    /// Upper bound of the binary search, meters (paper: 32).
    pub max_thresh_m: f64,
    /// Binary-search refinement steps.
    pub search_steps: u32,
}

impl DistThreshCalibrator {
    /// Creates a calibrator around a renderer with the paper's SSIM
    /// threshold of 0.9.
    pub fn new(renderer: Renderer) -> Self {
        DistThreshCalibrator {
            renderer,
            ssim_threshold: 0.9,
            k_samples: 3,
            max_thresh_m: 32.0,
            search_steps: 6,
        }
    }

    /// Whether far-BE frames rendered `d` meters apart at `p` (along a
    /// deterministic direction derived from `seed`) are similar enough.
    ///
    /// Pairs whose near-object sets differ are skipped (treated as
    /// similar): the cache's lookup criterion 3 already forbids reuse
    /// across a near-set change, so such pairs must not constrain
    /// `dist_thresh` — otherwise object-membership churn would be
    /// double-counted.
    fn similar_at(
        &self,
        scene: &Scene,
        rect: &Rect,
        cutoff: f64,
        p: Vec2,
        d: f64,
        seed: u64,
    ) -> bool {
        let mut rng = SmallRng::new(seed);
        let p_hash = scene.near_set_hash(p, cutoff);
        let mut partner = None;
        for _ in 0..6 {
            let angle = rng.range(0.0, std::f64::consts::TAU);
            let mut candidate = p + Vec2::new(angle.cos(), angle.sin()) * d;
            // Keep the partner inside the leaf (criterion 2 would reject
            // a cross-leaf reuse anyway).
            candidate.x = candidate.x.clamp(rect.min.x, rect.max.x - 1e-6);
            candidate.z = candidate.z.clamp(rect.min.z, rect.max.z - 1e-6);
            if scene.near_set_hash(candidate, cutoff) == p_hash {
                partner = Some(candidate);
                break;
            }
        }
        // No same-near-set partner exists at this distance: criterion 3
        // will gate reuse before SSIM ever matters, so the distance does
        // not constrain `dist_thresh`.
        let Some(partner) = partner else { return true };
        let a =
            self.renderer
                .render_panorama(scene, scene.eye(p), RenderFilter::FarOnly { cutoff });
        let b = self.renderer.render_panorama(
            scene,
            scene.eye(partner),
            RenderFilter::FarOnly { cutoff },
        );
        ssim_with(&a.frame, &b.frame, &SsimOptions::fast()) > self.ssim_threshold
    }

    /// Calibrates one leaf region: the minimum over `k_samples` points of
    /// the largest distance that still passes the SSIM test.
    pub fn calibrate_leaf(&self, scene: &Scene, rect: Rect, cutoff_radius: f64, seed: u64) -> f64 {
        let mut rng = SmallRng::new(seed ^ 0xD157);
        let mut leaf_thresh = f64::INFINITY;
        for k in 0..self.k_samples.max(1) {
            let p = rect.sample(rng.next_f64(), rng.next_f64());
            let point_seed = seed ^ ((k as u64 + 1) << 20);
            // If even the smallest step fails, the threshold collapses to
            // one grid spacing (exact reuse only).
            let lo_probe = scene.grid().spacing();
            if !self.similar_at(scene, &rect, cutoff_radius, p, lo_probe, point_seed) {
                leaf_thresh = leaf_thresh.min(lo_probe);
                continue;
            }
            let mut lo = lo_probe;
            let mut hi = self.max_thresh_m.min(rect.width().max(rect.depth()));
            if self.similar_at(scene, &rect, cutoff_radius, p, hi, point_seed) {
                leaf_thresh = leaf_thresh.min(hi);
                continue;
            }
            for _ in 0..self.search_steps {
                let mid = 0.5 * (lo + hi);
                if self.similar_at(scene, &rect, cutoff_radius, p, mid, point_seed) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            leaf_thresh = leaf_thresh.min(lo);
        }
        leaf_thresh.max(scene.grid().spacing())
    }

    /// Calibrates exactly the leaves a trajectory visits (offline
    /// preprocessing only needs thresholds where players can go).
    /// Returns the number of leaves calibrated.
    pub fn calibrate_path(
        &self,
        scene: &Scene,
        map: &mut CutoffMap,
        positions: impl IntoIterator<Item = Vec2>,
        seed: u64,
    ) -> usize {
        let mut visited: HashSet<LeafId> = HashSet::new();
        let mut todo: Vec<(LeafId, Rect, f64)> = Vec::new();
        for p in positions {
            let (leaf, _, _) = map.lookup_params(p);
            if visited.insert(leaf) {
                let (rect, cutoff) = map
                    .leaves()
                    .find(|(id, _, _)| *id == leaf)
                    .map(|(_, rect, c)| (rect, c.radius_m))
                    .expect("leaf exists");
                todo.push((leaf, rect, cutoff));
            }
        }
        let n = todo.len();
        for (leaf, rect, cutoff) in todo {
            let thresh = self.calibrate_leaf(scene, rect, cutoff, seed ^ leaf.0 as u64);
            map.set_dist_thresh(leaf, thresh);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::CutoffConfig;
    use coterie_device::DeviceProfile;
    use coterie_render::RenderOptions;
    use coterie_world::{GameId, GameSpec};

    fn calibrator() -> DistThreshCalibrator {
        let mut c = DistThreshCalibrator::new(Renderer::new(RenderOptions::fast()));
        c.k_samples = 2;
        c.search_steps = 4;
        c
    }

    #[test]
    fn calibrated_threshold_is_positive_and_bounded() {
        let spec = GameSpec::for_game(GameId::Bowling);
        let scene = spec.build_scene(1);
        let c = calibrator();
        let rect = scene.bounds();
        let t = c.calibrate_leaf(&scene, rect, 6.0, 42);
        assert!(t >= scene.grid().spacing());
        assert!(t <= c.max_thresh_m);
    }

    #[test]
    fn stricter_threshold_gives_smaller_dist() {
        let spec = GameSpec::for_game(GameId::VikingVillage);
        let scene = spec.build_scene(7);
        let rect = Rect::new(Vec2::new(40.0, 40.0), Vec2::new(80.0, 80.0));
        let mut lenient = calibrator();
        lenient.ssim_threshold = 0.80;
        let mut strict = calibrator();
        strict.ssim_threshold = 0.995;
        let d_lenient = lenient.calibrate_leaf(&scene, rect, 8.0, 42);
        let d_strict = strict.calibrate_leaf(&scene, rect, 8.0, 42);
        assert!(
            d_strict <= d_lenient,
            "strict {d_strict:.2} should not exceed lenient {d_lenient:.2}"
        );
    }

    #[test]
    fn calibrate_path_touches_only_visited_leaves() {
        let spec = GameSpec::for_game(GameId::Pool);
        let scene = spec.build_scene(1);
        let config = CutoffConfig::for_spec(&spec);
        let mut map = CutoffMap::compute(&scene, &DeviceProfile::pixel2(), &config, 1);
        let c = calibrator();
        let center = scene.bounds().center();
        let n = c.calibrate_path(&scene, &mut map, [center], 9);
        assert_eq!(n, 1);
        let (_, _, thresh) = map.lookup_params(center);
        assert!(thresh > 0.0);
        // Repeat visits don't recalibrate more leaves.
        let n2 = c.calibrate_path(&scene, &mut map, [center, center], 9);
        assert_eq!(n2, 1);
    }
}
