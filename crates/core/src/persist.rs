//! Binary persistence for offline-preprocessing artifacts.
//!
//! The paper's porting workflow (§6) runs the offline preprocessing
//! module once per app — producing the leaf regions, cutoff radii and
//! distance thresholds — and ships the result with the game. This module
//! serializes a [`CutoffMap`] to a compact binary blob so the artifact
//! can be stored and reloaded without recomputation.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   u32 = 0x43435546 ("CCUF")
//! version u16 = 1
//! grid_spacing f64
//! calc_count   u64
//! leaf_count   u32
//! per leaf: min_x f64, min_z f64, max_x f64, max_z f64,
//!           depth u32, radius f64, dist_thresh f64 (NaN = uncalibrated)
//! ```
//!
//! The quadtree *topology* is not stored; [`load_cutoff_map`] rebuilds
//! the point-location structure from the leaf rectangles, which is
//! sufficient because leaves tile the root region exactly.

use crate::cutoff::{CutoffMap, LeafCutoff};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use coterie_world::{Rect, Vec2};
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x4343_5546;
const VERSION: u16 = 1;

/// Errors loading a persisted cutoff map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Not a cutoff-map blob.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The blob ended prematurely.
    Truncated,
    /// A decoded field is impossible.
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a coterie cutoff-map blob"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "cutoff-map blob ended unexpectedly"),
            PersistError::Corrupt(what) => write!(f, "corrupt cutoff-map blob: {what}"),
        }
    }
}

impl Error for PersistError {}

/// Serializes a cutoff map.
pub fn save_cutoff_map(map: &CutoffMap) -> Bytes {
    let leaves: Vec<(Rect, LeafCutoff, u32)> = map.leaves_with_depth().collect();
    let mut buf = BytesMut::with_capacity(32 + leaves.len() * 52);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_f64_le(map.grid_spacing());
    buf.put_u64_le(map.calc_count());
    buf.put_u32_le(leaves.len() as u32);
    for (rect, cutoff, depth) in leaves {
        buf.put_f64_le(rect.min.x);
        buf.put_f64_le(rect.min.z);
        buf.put_f64_le(rect.max.x);
        buf.put_f64_le(rect.max.z);
        buf.put_u32_le(depth);
        buf.put_f64_le(cutoff.radius_m);
        buf.put_f64_le(cutoff.dist_thresh_m.unwrap_or(f64::NAN));
    }
    buf.freeze()
}

/// Deserializes a cutoff map saved by [`save_cutoff_map`].
///
/// # Errors
///
/// Returns [`PersistError`] when the blob is malformed.
pub fn load_cutoff_map(mut data: &[u8]) -> Result<CutoffMap, PersistError> {
    if data.remaining() < 6 {
        return Err(PersistError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if data.remaining() < 20 {
        return Err(PersistError::Truncated);
    }
    let grid_spacing = data.get_f64_le();
    if !(grid_spacing.is_finite() && grid_spacing > 0.0) {
        return Err(PersistError::Corrupt("invalid grid spacing"));
    }
    let calc_count = data.get_u64_le();
    let leaf_count = data.get_u32_le() as usize;
    if leaf_count == 0 {
        return Err(PersistError::Corrupt("no leaves"));
    }
    if data.remaining() < leaf_count.saturating_mul(52) {
        return Err(PersistError::Truncated);
    }
    let mut leaves = Vec::with_capacity(leaf_count);
    for _ in 0..leaf_count {
        let min = Vec2::new(data.get_f64_le(), data.get_f64_le());
        let max = Vec2::new(data.get_f64_le(), data.get_f64_le());
        let depth = data.get_u32_le();
        let radius = data.get_f64_le();
        let thresh = data.get_f64_le();
        if !(min.x.is_finite() && max.x.is_finite() && radius.is_finite() && radius > 0.0) {
            return Err(PersistError::Corrupt("non-finite leaf fields"));
        }
        if min.x >= max.x || min.z >= max.z {
            return Err(PersistError::Corrupt("degenerate leaf rect"));
        }
        leaves.push((
            Rect::new(min, max),
            LeafCutoff {
                radius_m: radius,
                dist_thresh_m: if thresh.is_nan() { None } else { Some(thresh) },
            },
            depth,
        ));
    }
    CutoffMap::from_leaves(grid_spacing, calc_count, leaves)
        .ok_or(PersistError::Corrupt("leaves do not tile a rectangle"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutoff::CutoffConfig;
    use coterie_device::DeviceProfile;
    use coterie_world::{GameId, GameSpec};

    fn sample_map() -> (coterie_world::Scene, CutoffMap) {
        let spec = GameSpec::for_game(GameId::Bowling);
        let scene = spec.build_scene(5);
        let map = CutoffMap::compute(
            &scene,
            &DeviceProfile::pixel2(),
            &CutoffConfig::for_spec(&spec),
            5,
        );
        (scene, map)
    }

    #[test]
    fn roundtrip_preserves_lookups() {
        let (scene, map) = sample_map();
        let blob = save_cutoff_map(&map);
        let loaded = load_cutoff_map(&blob).expect("round trip");
        assert_eq!(loaded.calc_count(), map.calc_count());
        assert_eq!(loaded.stats().leaf_count, map.stats().leaf_count);
        // Every probed location resolves to the same radius/threshold.
        for i in 0..12 {
            for j in 0..12 {
                let p = Vec2::new(
                    scene.bounds().width() * (i as f64 + 0.5) / 12.0,
                    scene.bounds().depth() * (j as f64 + 0.5) / 12.0,
                );
                let (_, r1, d1) = map.lookup_params(p);
                let (_, r2, d2) = loaded.lookup_params(p);
                assert_eq!(r1, r2, "radius differs at {p}");
                assert_eq!(d1, d2, "dist_thresh differs at {p}");
            }
        }
    }

    #[test]
    fn calibrated_thresholds_survive() {
        let (scene, mut map) = sample_map();
        let (leaf, _, _) = map.lookup_params(scene.bounds().center());
        map.set_dist_thresh(leaf, 1.25);
        let loaded = load_cutoff_map(&save_cutoff_map(&map)).expect("round trip");
        let (_, _, thresh) = loaded.lookup_params(scene.bounds().center());
        assert_eq!(thresh, 1.25);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(
            load_cutoff_map(b"nope").unwrap_err(),
            PersistError::Truncated
        );
        assert_eq!(
            load_cutoff_map(&[0u8; 64]).unwrap_err(),
            PersistError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected() {
        let (_, map) = sample_map();
        let blob = save_cutoff_map(&map);
        for cut in [7, 20, blob.len() / 2, blob.len() - 3] {
            assert!(load_cutoff_map(&blob[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let (_, map) = sample_map();
        let mut blob = save_cutoff_map(&map).to_vec();
        blob[4] = 42;
        assert_eq!(
            load_cutoff_map(&blob).unwrap_err(),
            PersistError::UnsupportedVersion(42)
        );
    }
}
