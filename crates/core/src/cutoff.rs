//! The adaptive cutoff scheme (§4.3 of the paper).
//!
//! The cutoff radius separating near BE from far BE must be as large as
//! possible (maximizing far-BE similarity, Figure 5) without violating
//! Constraint 1:
//!
//! `RT_FI + RT_NearBE < 16.7 ms`
//!
//! Because object density varies across the world, one radius per world
//! is wasteful and one radius per grid point is computationally
//! infeasible (hundreds of millions of points). The adaptive scheme
//! recursively partitions the world into a quadtree: each invocation
//! samples `K` random locations, computes their maximal radii, and stops
//! (recording the minimum) when the radii are roughly uniform, otherwise
//! splits into four quadrants.

use coterie_device::DeviceProfile;
use coterie_world::noise::SmallRng;
use coterie_world::quadtree::Partition;
use coterie_world::{GameSpec, LeafId, Quadtree, QuadtreeStats, Rect, Scene, Vec2};
use serde::{Deserialize, Serialize};

/// Configuration of the cutoff computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutoffConfig {
    /// Total per-frame latency budget (60 FPS ⇒ 16.7 ms).
    pub frame_budget_ms: f64,
    /// Measured upper bound on FI render time for this app (< 4 ms on
    /// Pixel 2 for the paper's games, §4.3).
    pub fi_render_ms: f64,
    /// Locations sampled per region (the paper determines K = 10
    /// experimentally, Figure 6).
    pub k_samples: usize,
    /// Relative radius spread below which a region counts as uniform.
    pub rel_tolerance: f64,
    /// Absolute spread (meters) below which a region counts as uniform.
    pub abs_tolerance_m: f64,
    /// Smallest permitted cutoff radius, meters.
    pub min_radius_m: f64,
    /// Largest permitted cutoff radius, meters (Racing Mountain's radii
    /// reach ≈180 m, Figure 7).
    pub max_radius_m: f64,
    /// Maximum quadtree depth (the paper's deepest tree is 6, Table 3).
    pub max_depth: u32,
    /// Safety margin applied to the minimum sampled radius of a leaf.
    ///
    /// Our procedural scenes concentrate triangles in fewer, larger
    /// assets than Unity scenes do, so triangle density between the K
    /// samples is spikier; shrinking the leaf radius by this factor
    /// restores the paper's ≲0.25 % Constraint-1 violation rate
    /// (Figure 6) without materially reducing far-BE similarity.
    pub safety_factor: f64,
}

impl CutoffConfig {
    /// Default configuration for a game: the paper's K = 10 and the
    /// game's measured FI bound.
    pub fn for_spec(spec: &GameSpec) -> Self {
        CutoffConfig {
            frame_budget_ms: coterie_device::FRAME_BUDGET_MS,
            fi_render_ms: spec.fi_render_ms,
            k_samples: 10,
            rel_tolerance: 0.15,
            abs_tolerance_m: 0.5,
            min_radius_m: 1.0,
            max_radius_m: 200.0,
            max_depth: 6,
            safety_factor: 0.7,
        }
    }

    /// The near-BE render budget implied by Constraint 1:
    /// `frame_budget − RT_FI` (12.7 ms for the paper's 4 ms FI bound).
    pub fn near_budget_ms(&self) -> f64 {
        self.frame_budget_ms - self.fi_render_ms
    }
}

/// The maximal cutoff radius at one location: the largest radius whose
/// near-BE triangle load still renders within the budget on `device`.
///
/// Monotonicity of triangles-within-radius makes this a binary search.
pub fn max_cutoff_radius(
    scene: &Scene,
    device: &DeviceProfile,
    config: &CutoffConfig,
    p: Vec2,
) -> f64 {
    let budget_tris = device.triangle_budget(config.near_budget_ms());
    // Quick accept: even the largest radius fits.
    if scene.triangles_within(p, config.max_radius_m) <= budget_tris {
        return config.max_radius_m;
    }
    let mut lo = config.min_radius_m;
    let mut hi = config.max_radius_m;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if scene.triangles_within(p, mid) <= budget_tris {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Payload of a leaf region: its cutoff radius and (once calibrated) the
/// cache-lookup distance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafCutoff {
    /// The region's near/far cutoff radius, meters (the minimum over the
    /// K sampled locations, per the paper).
    pub radius_m: f64,
    /// Cache lookup `dist_thresh` for this leaf (§5.3); `None` until
    /// calibrated.
    pub dist_thresh_m: Option<f64>,
}

/// Output of the adaptive cutoff scheme: the leaf-region quadtree plus
/// bookkeeping for Table 3.
#[derive(Debug, Clone)]
pub struct CutoffMap {
    tree: Quadtree<LeafCutoff>,
    /// Number of per-location cutoff calculations performed.
    calc_count: u64,
    /// Grid spacing of the scene the map was computed for, meters.
    grid_spacing_m: f64,
}

impl CutoffMap {
    /// Runs the adaptive scheme over the whole world.
    pub fn compute(
        scene: &Scene,
        device: &DeviceProfile,
        config: &CutoffConfig,
        seed: u64,
    ) -> CutoffMap {
        let mut rng = SmallRng::new(seed ^ 0xC07F);
        let mut calc_count = 0u64;
        let tree = Quadtree::build(scene.bounds(), config.max_depth, &mut |rect, depth| {
            let mut radii = Vec::with_capacity(config.k_samples);
            for _ in 0..config.k_samples.max(1) {
                let p = rect.sample(rng.next_f64(), rng.next_f64());
                calc_count += 1;
                radii.push(max_cutoff_radius(scene, device, config, p));
            }
            let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = radii.iter().cloned().fold(0.0, f64::max);
            let uniform =
                (max - min) <= config.abs_tolerance_m || (max - min) <= config.rel_tolerance * max;
            if uniform || depth >= config.max_depth {
                let radius = (min * config.safety_factor).max(config.min_radius_m);
                Partition::Stop(LeafCutoff {
                    radius_m: radius,
                    dist_thresh_m: None,
                })
            } else {
                Partition::Split
            }
        });
        CutoffMap {
            tree,
            calc_count,
            grid_spacing_m: scene.grid().spacing(),
        }
    }

    /// The leaf region containing `p` and its cutoff radius.
    ///
    /// # Panics
    ///
    /// Panics if `p` cannot be resolved to a leaf, which cannot happen
    /// for points clamped within the world bounds.
    pub fn cutoff_at(&self, p: Vec2) -> (LeafId, f64) {
        let leaf = self.tree.locate(p).expect("cutoff map covers the world");
        (leaf.id, leaf.value.radius_m)
    }

    /// The leaf id, cutoff radius, and calibrated distance threshold at
    /// `p`. `dist_thresh` falls back to [`CutoffMap::default_dist_thresh`]
    /// when the leaf is uncalibrated.
    pub fn lookup_params(&self, p: Vec2) -> (LeafId, f64, f64) {
        let leaf = self.tree.locate(p).expect("cutoff map covers the world");
        let dist = leaf
            .value
            .dist_thresh_m
            .unwrap_or_else(|| self.default_dist_thresh(leaf.value.radius_m));
        (leaf.id, leaf.value.radius_m, dist)
    }

    /// Uncalibrated fallback distance threshold.
    ///
    /// The paper's SSIM-calibrated thresholds land, in every game, at a
    /// few grid spacings — Table 6's hit ratios (80.8 %–88.4 %)
    /// correspond to one prefetched frame covering ≈5–8 grid points,
    /// because each game's grid spacing already co-varies with its
    /// player speed and world scale. The default therefore covers six
    /// grid spacings, capped at 4 m (beyond which the substituted
    /// frame's parallax error becomes visible regardless of content).
    /// In dense regions the effective reuse radius is further gated by
    /// the same-leaf and same-near-set lookup criteria; [`crate::calibrate`]
    /// can replace this default with per-leaf SSIM-derived values.
    pub fn default_dist_thresh(&self, _radius_m: f64) -> f64 {
        (6.0 * self.grid_spacing_m).clamp(0.05, 4.0)
    }

    /// Sets the calibrated distance threshold of a leaf.
    pub fn set_dist_thresh(&mut self, leaf: LeafId, dist_thresh_m: f64) {
        if let Some(l) = self.tree.leaf_mut(leaf) {
            l.value.dist_thresh_m = Some(dist_thresh_m);
        }
    }

    /// Quadtree shape statistics (Table 3's depth/leaf columns).
    pub fn stats(&self) -> QuadtreeStats {
        self.tree.stats()
    }

    /// Number of per-location cutoff calculations performed — the paper's
    /// headline reduction (268 M grid points → a few thousand
    /// calculations for CTS).
    pub fn calc_count(&self) -> u64 {
        self.calc_count
    }

    /// All leaf regions with their cutoffs.
    pub fn leaves(&self) -> impl Iterator<Item = (LeafId, Rect, LeafCutoff)> + '_ {
        self.tree.leaves().iter().map(|l| (l.id, l.rect, l.value))
    }

    /// Leaf regions with their quadtree depths (used by persistence).
    pub fn leaves_with_depth(&self) -> impl Iterator<Item = (Rect, LeafCutoff, u32)> + '_ {
        self.tree
            .leaves()
            .iter()
            .map(|l| (l.rect, l.value, l.depth))
    }

    /// Grid spacing of the scene this map was computed for, meters.
    pub fn grid_spacing(&self) -> f64 {
        self.grid_spacing_m
    }

    /// Rebuilds a map from persisted leaves. The leaves must be the
    /// exact quadtree tiling produced by [`CutoffMap::compute`]; returns
    /// `None` if they do not reassemble into a quadtree.
    pub fn from_leaves(
        grid_spacing_m: f64,
        calc_count: u64,
        leaves: Vec<(Rect, LeafCutoff, u32)>,
    ) -> Option<CutoffMap> {
        if leaves.is_empty() || grid_spacing_m <= 0.0 {
            return None;
        }
        let root = leaves.iter().skip(1).fold(leaves[0].0, |acc, (r, _, _)| {
            Rect::new(
                Vec2::new(acc.min.x.min(r.min.x), acc.min.z.min(r.min.z)),
                Vec2::new(acc.max.x.max(r.max.x), acc.max.z.max(r.max.z)),
            )
        });
        let max_depth = leaves.iter().map(|(_, _, d)| *d).max().unwrap_or(0);

        // Validate that the leaves tile the root as a quadtree before
        // building (Quadtree::build panics on a bad split request).
        fn matches(a: &Rect, b: &Rect) -> bool {
            let eps = 1e-6;
            (a.min.x - b.min.x).abs() < eps
                && (a.min.z - b.min.z).abs() < eps
                && (a.max.x - b.max.x).abs() < eps
                && (a.max.z - b.max.z).abs() < eps
        }
        fn valid(
            region: &Rect,
            depth: u32,
            max_depth: u32,
            leaves: &[(Rect, LeafCutoff, u32)],
        ) -> bool {
            if leaves.iter().any(|(r, _, _)| matches(r, region)) {
                return true;
            }
            if depth >= max_depth {
                return false;
            }
            region
                .quadrants()
                .iter()
                .all(|q| valid(q, depth + 1, max_depth, leaves))
        }
        if !valid(&root, 0, max_depth, &leaves) {
            return None;
        }

        let tree = Quadtree::build(root, max_depth, &mut |region, _depth| match leaves
            .iter()
            .find(|(r, _, _)| matches(r, region))
        {
            Some((_, value, _)) => Partition::Stop(*value),
            None => Partition::Split,
        });
        Some(CutoffMap {
            tree,
            calc_count,
            grid_spacing_m,
        })
    }

    /// Modeled offline processing time in hours (Table 3's last column).
    ///
    /// Each per-location cutoff calculation requires test-rendering the
    /// near BE at candidate radii on the target device during app
    /// installation; we charge the measured-equivalent 0.55 s per
    /// calculation, which reproduces the paper's 0.13–6.6 h range across
    /// the nine games.
    pub fn modeled_processing_hours(&self) -> f64 {
        const SECONDS_PER_CALC: f64 = 0.55;
        self.calc_count as f64 * SECONDS_PER_CALC / 3600.0
    }

    /// Fraction of `positions` whose near-BE render time violates
    /// Constraint 1 under this map's leaf radii (the Figure 6 metric).
    pub fn violation_fraction(
        &self,
        scene: &Scene,
        device: &DeviceProfile,
        config: &CutoffConfig,
        positions: impl IntoIterator<Item = Vec2>,
    ) -> f64 {
        let budget_tris = device.triangle_budget(config.near_budget_ms());
        let mut total = 0u64;
        let mut violations = 0u64;
        for p in positions {
            total += 1;
            let (_, radius) = self.cutoff_at(p);
            if scene.triangles_within(p, radius) > budget_tris {
                violations += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            violations as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_world::GameId;

    fn setup(id: GameId) -> (Scene, GameSpec, CutoffConfig, DeviceProfile) {
        let spec = GameSpec::for_game(id);
        let scene = spec.build_scene(7);
        let config = CutoffConfig::for_spec(&spec);
        (scene, spec, config, DeviceProfile::pixel2())
    }

    #[test]
    fn near_budget_matches_paper() {
        // 16.7 - 4 = 12.7 ms for a 4 ms FI bound.
        let config = CutoffConfig {
            fi_render_ms: 4.0,
            ..CutoffConfig::for_spec(&GameSpec::for_game(GameId::VikingVillage))
        };
        assert!((config.near_budget_ms() - 12.7).abs() < 1e-9);
    }

    #[test]
    fn max_radius_satisfies_constraint1() {
        let (scene, _, config, device) = setup(GameId::VikingVillage);
        let budget = device.triangle_budget(config.near_budget_ms());
        let mut rng = SmallRng::new(3);
        for _ in 0..20 {
            let p = scene.bounds().sample(rng.next_f64(), rng.next_f64());
            let r = max_cutoff_radius(&scene, &device, &config, p);
            assert!(r >= config.min_radius_m);
            assert!(r <= config.max_radius_m);
            if r < config.max_radius_m {
                assert!(
                    scene.triangles_within(p, r) <= budget,
                    "constraint violated at {p} with radius {r}"
                );
            }
        }
    }

    #[test]
    fn dense_locations_get_smaller_radii() {
        let (scene, _, config, device) = setup(GameId::VikingVillage);
        // Find the densest and sparsest probe among a grid of samples.
        let mut probes = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let p = Vec2::new(
                    187.0 * (i as f64 + 0.5) / 10.0,
                    130.0 * (j as f64 + 0.5) / 10.0,
                );
                probes.push((scene.triangles_within(p, 10.0), p));
            }
        }
        probes.sort_by_key(|&(t, _)| t);
        let sparse = probes[0].1;
        let dense = probes[probes.len() - 1].1;
        let r_sparse = max_cutoff_radius(&scene, &device, &config, sparse);
        let r_dense = max_cutoff_radius(&scene, &device, &config, dense);
        assert!(
            r_dense < r_sparse,
            "dense {r_dense:.1} m should be < sparse {r_sparse:.1} m"
        );
    }

    #[test]
    fn compute_covers_world_and_counts_calcs() {
        let (scene, _, config, device) = setup(GameId::Pool);
        let map = CutoffMap::compute(&scene, &device, &config, 1);
        let stats = map.stats();
        assert!(stats.leaf_count >= 1);
        assert_eq!(map.calc_count() % config.k_samples as u64, 0);
        // Every interior point resolves.
        let (_, r) = map.cutoff_at(scene.bounds().center());
        assert!(r >= config.min_radius_m);
    }

    #[test]
    fn viking_tree_deeper_than_indoor_games() {
        // Table 3's qualitative shape: Viking's non-uniform density gives
        // a deeper quadtree than the small indoor rooms.
        let (viking_scene, _, viking_cfg, device) = setup(GameId::VikingVillage);
        let viking = CutoffMap::compute(&viking_scene, &device, &viking_cfg, 1);
        let (pool_scene, _, pool_cfg, _) = setup(GameId::Pool);
        let pool = CutoffMap::compute(&pool_scene, &device, &pool_cfg, 1);
        assert!(
            viking.stats().max_depth > pool.stats().max_depth,
            "viking {:?} vs pool {:?}",
            viking.stats(),
            pool.stats()
        );
        assert!(viking.stats().leaf_count > pool.stats().leaf_count);
    }

    #[test]
    fn calc_count_far_below_grid_points() {
        // The headline claim: a few thousand calculations instead of
        // hundreds of millions of grid points.
        let (scene, _, config, device) = setup(GameId::Cts);
        let map = CutoffMap::compute(&scene, &device, &config, 1);
        let grid_points = scene.reachable_grid_points();
        assert!(
            map.calc_count() * 1000 < grid_points,
            "calc count {} vs grid points {}",
            map.calc_count(),
            grid_points
        );
    }

    #[test]
    fn violation_fraction_is_small_with_k10() {
        // Figure 6: with K=10 fewer than 0.25% of trace locations violate
        // Constraint 1. Our tolerance band allows up to ~2%.
        let (scene, spec, config, device) = setup(GameId::VikingVillage);
        let map = CutoffMap::compute(&scene, &device, &config, 1);
        let traj = coterie_world::Trajectory::generate(&scene, &spec, 0, 1, 120.0, 5);
        let positions: Vec<Vec2> = (0..600).map(|i| traj.position(i as f64 * 0.2)).collect();
        let frac = map.violation_fraction(&scene, &device, &config, positions);
        assert!(frac < 0.02, "violation fraction {frac}");
    }

    #[test]
    fn more_samples_reduce_violations() {
        // Figure 6's trend: larger K -> fewer violations (more samples
        // find the dense spots).
        let (scene, spec, config, device) = setup(GameId::VikingVillage);
        let traj = coterie_world::Trajectory::generate(&scene, &spec, 0, 1, 120.0, 9);
        let positions: Vec<Vec2> = (0..400).map(|i| traj.position(i as f64 * 0.3)).collect();
        let frac_k2 = {
            let c = CutoffConfig {
                k_samples: 2,
                ..config
            };
            let m = CutoffMap::compute(&scene, &device, &c, 1);
            m.violation_fraction(&scene, &device, &c, positions.iter().cloned())
        };
        let frac_k16 = {
            let c = CutoffConfig {
                k_samples: 16,
                ..config
            };
            let m = CutoffMap::compute(&scene, &device, &c, 1);
            m.violation_fraction(&scene, &device, &c, positions.iter().cloned())
        };
        assert!(
            frac_k16 <= frac_k2 + 1e-9,
            "K=16 ({frac_k16}) should violate no more than K=2 ({frac_k2})"
        );
    }

    #[test]
    fn dist_thresh_calibration_roundtrip() {
        let (scene, _, config, device) = setup(GameId::Bowling);
        let mut map = CutoffMap::compute(&scene, &device, &config, 1);
        let center = scene.bounds().center();
        let (leaf, radius, default_thresh) = map.lookup_params(center);
        assert_eq!(default_thresh, map.default_dist_thresh(radius));
        map.set_dist_thresh(leaf, 0.5);
        let (_, _, thresh) = map.lookup_params(center);
        assert_eq!(thresh, 0.5);
    }

    #[test]
    fn processing_hours_in_paper_range() {
        let (scene, _, config, device) = setup(GameId::VikingVillage);
        let map = CutoffMap::compute(&scene, &device, &config, 1);
        let hours = map.modeled_processing_hours();
        assert!(
            (0.01..10.0).contains(&hours),
            "modeled preprocessing {hours:.2} h out of plausible range"
        );
    }

    #[test]
    fn leaves_iterate_with_rects() {
        let (scene, _, config, device) = setup(GameId::Corridor);
        let map = CutoffMap::compute(&scene, &device, &config, 1);
        let total_area: f64 = map.leaves().map(|(_, rect, _)| rect.area()).sum();
        assert!((total_area - scene.bounds().area()).abs() < 1e-6);
        for (_, _, cutoff) in map.leaves() {
            assert!(cutoff.radius_m >= config.min_radius_m);
            assert!(cutoff.radius_m <= config.max_radius_m);
        }
    }
}
