//! Far-BE frame prefetching (§5.2 of the paper).
//!
//! The prefetcher anticipates the far-BE frames the player will need
//! next. Because cached frames are reusable within `dist_thresh`, a
//! prefetched frame covers several upcoming grid points — Figure 10's
//! example: with the frame for point 0 cached, the client moving toward
//! point 2 merely needs the frame for point 4 (and its forward neighbors
//! 5, 6, 7) fetched any time before arriving at point 4. The enlarged
//! window lets clients start prefetching "right away after the first time
//! reusing a cached frame" instead of coordinating with TDMA.

use crate::cache::{CacheQuery, FrameCache};
use crate::cutoff::CutoffMap;
use coterie_world::{GridPoint, GridSpec, Scene, Vec2};
use serde::{Deserialize, Serialize};

/// The set of grid points to have resident before the player reaches the
/// anchor point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchPlan {
    /// The anchor grid point (Figure 10's point 4): the reuse horizon of
    /// the currently cached frame along the movement direction.
    pub anchor: GridPoint,
    /// Grid points whose frames should be resident (anchor plus its
    /// forward neighbors), already filtered to the world lattice.
    pub targets: Vec<GridPoint>,
}

/// Computes prefetch plans from position, movement and cache state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prefetcher {
    /// How many `dist_thresh` radii ahead the anchor is placed. 1.0
    /// places it exactly at the reuse horizon.
    pub horizon_factor: f64,
}

impl Default for Prefetcher {
    fn default() -> Self {
        Prefetcher {
            horizon_factor: 1.0,
        }
    }
}

impl Prefetcher {
    /// Plans the next prefetch for a player at `pos` moving along `dir`
    /// (need not be normalized). The anchor is the grid point one reuse
    /// radius (`dist_thresh × horizon_factor`, at least one grid step)
    /// ahead; targets are the anchor and its three forward neighbors.
    pub fn plan(&self, grid: &GridSpec, pos: Vec2, dir: Vec2, dist_thresh: f64) -> PrefetchPlan {
        let step = grid.spacing();
        let ahead = (dist_thresh * self.horizon_factor).max(step);
        let dir = if dir.length() < 1e-12 {
            Vec2::new(0.0, 1.0)
        } else {
            dir.normalized()
        };
        let anchor_pos = pos + dir * ahead;
        let anchor = grid.snap(anchor_pos);
        // Forward neighbors: the three Moore neighbors of the anchor that
        // lie ahead of it along the movement direction (Figure 10's
        // points 5, 6, 7).
        let mut targets = vec![anchor];
        let mut forward: Vec<(f64, GridPoint)> = anchor
            .neighbors8()
            .into_iter()
            .filter(|n| grid.contains(*n))
            .map(|n| {
                let progress = (grid.position(n) - anchor_pos).dot(dir);
                (progress, n)
            })
            .filter(|(progress, _)| *progress > 0.0)
            .collect();
        forward.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite progress"));
        targets.extend(forward.into_iter().take(3).map(|(_, n)| n));
        PrefetchPlan { anchor, targets }
    }

    /// Filters a plan down to the targets the cache cannot already serve
    /// ("if all needed frames are found in the frame cache, the
    /// prefetching is skipped", §5.1 task 3).
    pub fn misses<T>(
        &self,
        plan: &PrefetchPlan,
        scene: &Scene,
        cutoffs: &CutoffMap,
        cache: &FrameCache<T>,
    ) -> Vec<GridPoint> {
        plan.targets
            .iter()
            .copied()
            .filter(|gp| {
                let pos = scene.grid().position(*gp);
                let (leaf, radius, dist_thresh) = cutoffs.lookup_params(pos);
                let query = CacheQuery {
                    grid: *gp,
                    pos,
                    leaf,
                    near_hash: scene.near_set_hash(pos, radius),
                    dist_thresh,
                };
                !cache.peek(&query)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, CacheVersion, FrameMeta, FrameSource};
    use crate::cutoff::CutoffConfig;
    use coterie_device::DeviceProfile;
    use coterie_world::{GameId, GameSpec};

    fn grid() -> GridSpec {
        GridSpec::new(Vec2::ZERO, 0.5, 200, 200)
    }

    #[test]
    fn anchor_is_ahead_of_player() {
        let g = grid();
        let p = Prefetcher::default();
        let pos = Vec2::new(50.0, 50.0);
        let plan = p.plan(&g, pos, Vec2::new(0.0, 1.0), 3.0);
        let anchor_pos = g.position(plan.anchor);
        assert!(anchor_pos.z > pos.z, "anchor must lie ahead: {anchor_pos}");
        assert!((anchor_pos.z - pos.z - 3.0).abs() < 0.5);
    }

    #[test]
    fn targets_include_anchor_and_forward_neighbors() {
        let g = grid();
        let plan = Prefetcher::default().plan(&g, Vec2::new(50.0, 50.0), Vec2::new(0.0, 1.0), 2.0);
        assert_eq!(plan.targets[0], plan.anchor);
        assert_eq!(plan.targets.len(), 4, "anchor + 3 forward neighbors");
        for t in &plan.targets[1..] {
            assert_eq!(plan.anchor.hops(*t), 1);
            // Forward means larger z for +z movement.
            assert!(t.iz >= plan.anchor.iz);
        }
    }

    #[test]
    fn zero_direction_defaults_forward() {
        let g = grid();
        let plan = Prefetcher::default().plan(&g, Vec2::new(50.0, 50.0), Vec2::ZERO, 1.0);
        assert!(g.contains(plan.anchor));
    }

    #[test]
    fn anchor_clamped_at_world_edge() {
        let g = grid();
        let plan = Prefetcher::default().plan(&g, Vec2::new(50.0, 99.4), Vec2::new(0.0, 1.0), 10.0);
        assert!(g.contains(plan.anchor));
        for t in &plan.targets {
            assert!(g.contains(*t));
        }
    }

    #[test]
    fn small_dist_thresh_still_looks_one_step_ahead() {
        let g = grid();
        let pos = Vec2::new(50.0, 50.0);
        let plan = Prefetcher::default().plan(&g, pos, Vec2::new(1.0, 0.0), 0.01);
        assert_ne!(
            plan.anchor,
            g.snap(pos),
            "anchor must move at least one step"
        );
    }

    #[test]
    fn misses_reports_uncached_targets_only() {
        let spec = GameSpec::for_game(GameId::Pool);
        let scene = spec.build_scene(1);
        let cutoffs = CutoffMap::compute(
            &scene,
            &DeviceProfile::pixel2(),
            &CutoffConfig::for_spec(&spec),
            1,
        );
        let mut cache: FrameCache<()> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let prefetcher = Prefetcher::default();
        let pos = scene.bounds().center();
        let plan = prefetcher.plan(scene.grid(), pos, Vec2::new(0.0, 1.0), 0.5);
        // Nothing cached: everything misses.
        let misses = prefetcher.misses(&plan, &scene, &cutoffs, &cache);
        assert_eq!(misses.len(), plan.targets.len());
        // Cache the anchor's frame; it and close targets become resident.
        let anchor_pos = scene.grid().position(plan.anchor);
        let (leaf, radius, _) = cutoffs.lookup_params(anchor_pos);
        cache.insert(
            FrameMeta {
                grid: plan.anchor,
                pos: anchor_pos,
                leaf,
                near_hash: scene.near_set_hash(anchor_pos, radius),
            },
            FrameSource::SelfPrefetch,
            (),
            1,
            pos,
        );
        let misses_after = prefetcher.misses(&plan, &scene, &cutoffs, &cache);
        assert!(misses_after.len() < misses.len());
    }

    #[test]
    fn diagonal_direction_yields_diagonal_anchor() {
        let g = grid();
        let pos = Vec2::new(50.0, 50.0);
        let plan = Prefetcher::default().plan(&g, pos, Vec2::new(1.0, 1.0), 4.0);
        let a = g.position(plan.anchor);
        assert!(a.x > pos.x && a.z > pos.z);
    }
}
