//! # coterie-core
//!
//! The Coterie contribution: near/far BE decoupling via an adaptive
//! cutoff scheme, a similarity-exploiting frame cache, and the far-BE
//! prefetcher.
//!
//! Coterie (ASPLOS 2020) enables 4K multiplayer VR on phones by cutting
//! the per-player network load 10.6×–25.7×. Three mechanisms combine:
//!
//! 1. **Near/far decoupling** (§4.3) — the background environment is
//!    split at a *cutoff radius*; near BE renders on the phone (whose GPU
//!    idles at ~15 % under split rendering), far BE is prefetched. This
//!    defeats the near-object effect and makes far-BE frames of nearby
//!    locations highly similar.
//! 2. **Adaptive cutoff** ([`cutoff`]) — the largest radius satisfying
//!    Constraint 1 (`RT_FI + RT_nearBE < 16.7 ms`) varies with object
//!    density, so the world is recursively quadtree-partitioned until
//!    each leaf region's radius is roughly uniform; only a few hundred
//!    leaf radii need computing instead of hundreds of millions
//!    (Table 3).
//! 3. **Frame cache + prefetcher** ([`cache`], [`prefetch`]) — far-BE
//!    frames are cached and reused for any sufficiently close location in
//!    the same leaf region with an identical near-object set (§5.3),
//!    cutting prefetch frequency 5.2×–8.6×.
//!
//! # Example
//!
//! ```
//! use coterie_core::cutoff::{CutoffConfig, CutoffMap};
//! use coterie_device::DeviceProfile;
//! use coterie_world::{GameId, GameSpec};
//!
//! let spec = GameSpec::for_game(GameId::Pool);
//! let scene = spec.build_scene(1);
//! let config = CutoffConfig::for_spec(&spec);
//! let map = CutoffMap::compute(&scene, &DeviceProfile::pixel2(), &config, 42);
//! let (leaf, radius) = map.cutoff_at(scene.bounds().center());
//! assert!(radius >= config.min_radius_m);
//! println!("{leaf} uses cutoff {radius:.1} m");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod cutoff;
pub mod persist;
pub mod prefetch;

pub use cache::{
    CacheConfig, CacheQuery, CacheStats, CacheVersion, EvictionPolicy, FrameCache, FrameMeta,
    FrameSource, MatchMode,
};
pub use calibrate::DistThreshCalibrator;
pub use cutoff::{CutoffConfig, CutoffMap, LeafCutoff};
pub use persist::{load_cutoff_map, save_cutoff_map, PersistError};
pub use prefetch::{PrefetchPlan, Prefetcher};
