//! The far-BE frame cache (§5.3 of the paper).
//!
//! Each Coterie client caches prefetched far-BE frames. A lookup for grid
//! point *k* returns a cached frame as a hit only when three criteria
//! hold:
//!
//! 1. the cached frame's grid point is within the leaf region's
//!    `dist_thresh` of *k*,
//! 2. both grid points lie in the *same leaf region* (regions may use
//!    different cutoff radii, which would leave a near/far gap),
//! 3. the corresponding near BEs contain the *same set of objects*, so
//!    the merge has no missing parts.
//!
//! Among qualifying frames the closest one wins. Replacement is LRU or
//! FLF ("furthest location first", evicting the frame furthest from the
//! player's current position); the paper finds both effective because
//! temporal and spatial locality coincide (§7).
//!
//! [`CacheVersion`] reproduces the five lookup configurations of Table 4
//! used for the inter-player-similarity study (§4.6).

use coterie_world::{GridPoint, LeafId, Vec2};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a candidate cached frame may match a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchMode {
    /// Only the identical grid point matches.
    Exact,
    /// Any frame satisfying the three similarity criteria matches.
    Similar,
}

/// Where a cached frame came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameSource {
    /// Prefetched by this client for itself.
    SelfPrefetch,
    /// Overheard from a reply to another player (promiscuous mode).
    Overheard,
    /// Produced by another session of the same game and shared through a
    /// server-side fleet store. Far-BE frames depend only on world
    /// geometry (grid point, leaf region, near-BE object set), never on
    /// which session rendered them, so cross-session reuse is sound
    /// whenever the same three criteria hold.
    Fleet,
}

/// One of the paper's five cache configurations (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheVersion {
    /// Matching allowed against self-prefetched (intra-player) frames.
    pub intra: Option<MatchMode>,
    /// Matching allowed against overheard (inter-player) frames.
    pub inter: Option<MatchMode>,
    /// Matching allowed against fleet-shared (cross-session) frames.
    pub fleet: Option<MatchMode>,
}

impl CacheVersion {
    /// Version 1: reuse intra-player frames, exact matches only.
    pub const V1: CacheVersion = CacheVersion {
        intra: Some(MatchMode::Exact),
        inter: None,
        fleet: None,
    };
    /// Version 2: reuse inter-player (overheard) frames, exact only.
    pub const V2: CacheVersion = CacheVersion {
        intra: None,
        inter: Some(MatchMode::Exact),
        fleet: None,
    };
    /// Version 3: reuse intra-player frames, similar matches (the final
    /// Coterie design).
    pub const V3: CacheVersion = CacheVersion {
        intra: Some(MatchMode::Similar),
        inter: None,
        fleet: None,
    };
    /// Version 4: reuse inter-player frames, similar matches.
    pub const V4: CacheVersion = CacheVersion {
        intra: None,
        inter: Some(MatchMode::Similar),
        fleet: None,
    };
    /// Version 5: both intra- and inter-player similar matches.
    pub const V5: CacheVersion = CacheVersion {
        intra: Some(MatchMode::Similar),
        inter: Some(MatchMode::Similar),
        fleet: None,
    };
    /// Fleet store configuration: session-id-free similar matching
    /// against frames contributed by any session of the same game.
    pub const FLEET: CacheVersion = CacheVersion {
        intra: Some(MatchMode::Similar),
        inter: None,
        fleet: Some(MatchMode::Similar),
    };

    /// All five versions in Table 4 order.
    pub const ALL: [CacheVersion; 5] = [Self::V1, Self::V2, Self::V3, Self::V4, Self::V5];

    /// Table row label ("Version 1" ... "Version 5", "Fleet").
    pub fn label(&self) -> &'static str {
        if self.fleet.is_some() {
            return if *self == Self::FLEET {
                "Fleet"
            } else {
                "custom"
            };
        }
        match (self.intra, self.inter) {
            (Some(MatchMode::Exact), None) => "Version 1",
            (None, Some(MatchMode::Exact)) => "Version 2",
            (Some(MatchMode::Similar), None) => "Version 3",
            (None, Some(MatchMode::Similar)) => "Version 4",
            (Some(MatchMode::Similar), Some(MatchMode::Similar)) => "Version 5",
            _ => "custom",
        }
    }

    /// The match mode applicable to a frame from `source`, if any.
    fn mode_for(&self, source: FrameSource) -> Option<MatchMode> {
        match source {
            FrameSource::SelfPrefetch => self.intra,
            FrameSource::Overheard => self.inter,
            FrameSource::Fleet => self.fleet,
        }
    }

    /// Whether frames from `source` should be admitted at all.
    pub fn admits(&self, source: FrameSource) -> bool {
        self.mode_for(source).is_some()
    }
}

/// Eviction policy (§5.3 "Cache replacement policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Furthest location first: evict the frame furthest from the
    /// player's current position in the virtual world.
    Flf,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes; `u64::MAX` emulates the infinite cache of the
    /// §4.6 trace study.
    pub capacity_bytes: u64,
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// Lookup/admission version.
    pub version: CacheVersion,
}

impl Default for CacheConfig {
    /// The shipping Coterie configuration: Version 3 with LRU in a
    /// phone-memory-sized cache (512 MB of the Pixel 2's 4 GB).
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024 * 1024,
            policy: EvictionPolicy::Lru,
            version: CacheVersion::V3,
        }
    }
}

impl CacheConfig {
    /// An unbounded trace-study cache with the given version.
    pub fn infinite(version: CacheVersion) -> Self {
        CacheConfig {
            capacity_bytes: u64::MAX,
            policy: EvictionPolicy::Lru,
            version,
        }
    }
}

/// Metadata stored alongside each cached frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Grid point the frame was rendered for.
    pub grid: GridPoint,
    /// World position of that grid point.
    pub pos: Vec2,
    /// Leaf region containing the grid point.
    pub leaf: LeafId,
    /// Hash of the near-BE object set at the grid point (criterion 3).
    pub near_hash: u64,
}

/// A cache lookup request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheQuery {
    /// Grid point being rendered.
    pub grid: GridPoint,
    /// Its world position.
    pub pos: Vec2,
    /// Its leaf region.
    pub leaf: LeafId,
    /// Its near-BE object-set hash.
    pub near_hash: u64,
    /// The leaf region's calibrated distance threshold, meters.
    pub dist_thresh: f64,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that returned a frame.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted so far.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    meta: FrameMeta,
    source: FrameSource,
    payload: T,
    size_bytes: u64,
    last_access: u64,
}

/// The per-client far-BE frame cache.
///
/// Generic over the payload so the §4.6 trace study can run with `()`
/// payloads ("there is no need to generate and manipulate the actual far
/// BE frames") while the full system caches encoded frames.
#[derive(Debug, Clone)]
pub struct FrameCache<T> {
    config: CacheConfig,
    entries: HashMap<u64, Entry<T>>,
    /// Spatial buckets (2 m cells) of entry keys for similar lookups.
    buckets: HashMap<(i32, i32), Vec<u64>>,
    next_id: u64,
    clock: u64,
    bytes: u64,
    stats: CacheStats,
}

/// Spatial bucket edge length, meters.
const BUCKET_M: f64 = 2.0;

impl<T> FrameCache<T> {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        FrameCache {
            config,
            entries: HashMap::new(),
            buckets: HashMap::new(),
            next_id: 0,
            clock: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cached payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn bucket_of(pos: Vec2) -> (i32, i32) {
        (
            (pos.x / BUCKET_M).floor() as i32,
            (pos.z / BUCKET_M).floor() as i32,
        )
    }

    /// Inserts a frame. `player_pos` is the inserting player's current
    /// position, used by FLF eviction. Frames from sources the version
    /// does not admit are dropped (e.g. overheard frames under V1/V3).
    pub fn insert(
        &mut self,
        meta: FrameMeta,
        source: FrameSource,
        payload: T,
        size_bytes: u64,
        player_pos: Vec2,
    ) {
        if !self.config.version.admits(source) {
            return;
        }
        self.clock += 1;
        while self.bytes.saturating_add(size_bytes) > self.config.capacity_bytes
            && !self.entries.is_empty()
        {
            self.evict_one(player_pos);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.bytes += size_bytes;
        self.buckets
            .entry(Self::bucket_of(meta.pos))
            .or_default()
            .push(id);
        self.entries.insert(
            id,
            Entry {
                meta,
                source,
                payload,
                size_bytes,
                last_access: self.clock,
            },
        );
    }

    fn evict_one(&mut self, player_pos: Vec2) {
        let victim = match self.config.policy {
            EvictionPolicy::Lru => self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_access)
                .map(|(&id, _)| id),
            EvictionPolicy::Flf => self
                .entries
                .iter()
                .max_by(|a, b| {
                    let da = a.1.meta.pos.distance_sq(player_pos);
                    let db = b.1.meta.pos.distance_sq(player_pos);
                    da.partial_cmp(&db).expect("finite distances")
                })
                .map(|(&id, _)| id),
        };
        if let Some(id) = victim {
            if let Some(e) = self.entries.remove(&id) {
                self.bytes -= e.size_bytes;
                if let Some(v) = self.buckets.get_mut(&Self::bucket_of(e.meta.pos)) {
                    v.retain(|&x| x != id);
                }
                self.stats.evictions += 1;
            }
        }
    }

    /// Looks up a frame for `query`, counting a hit or miss. Returns the
    /// payload of the best (closest) qualifying frame.
    pub fn lookup(&mut self, query: &CacheQuery) -> Option<&T> {
        let best = self.find_best(query);
        match best {
            Some(id) => {
                self.clock += 1;
                self.stats.hits += 1;
                let e = self.entries.get_mut(&id).expect("entry just found");
                e.last_access = self.clock;
                Some(&e.payload)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// [`FrameCache::lookup`] returning a mutable payload reference, so
    /// callers can mark per-frame state at hit time (e.g. a fleet store
    /// recording that a speculatively rendered frame was actually
    /// used). Counts and refreshes recency exactly like `lookup`.
    pub fn lookup_mut(&mut self, query: &CacheQuery) -> Option<&mut T> {
        let best = self.find_best(query);
        match best {
            Some(id) => {
                self.clock += 1;
                self.stats.hits += 1;
                let e = self.entries.get_mut(&id).expect("entry just found");
                e.last_access = self.clock;
                Some(&mut e.payload)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether a lookup would hit, without touching counters or recency.
    pub fn peek(&self, query: &CacheQuery) -> bool {
        self.find_best(query).is_some()
    }

    /// Payload size of the best qualifying frame for `query`, without
    /// touching counters or recency. A fleet store uses this to detect
    /// a re-insert that would *replace* an existing frame with a
    /// different-sized payload (the byte budget must debit the old size
    /// before crediting the new one).
    pub fn peek_size(&self, query: &CacheQuery) -> Option<u64> {
        self.find_best(query).map(|id| self.entries[&id].size_bytes)
    }

    /// Removes the best qualifying frame for `query`, returning its
    /// payload size. Unlike eviction this does not count toward
    /// [`CacheStats::evictions`] — it is the first half of a
    /// replace-in-place, not a capacity decision.
    pub fn remove_matching(&mut self, query: &CacheQuery) -> Option<u64> {
        let id = self.find_best(query)?;
        let e = self.entries.remove(&id).expect("entry just found");
        self.bytes -= e.size_bytes;
        if let Some(v) = self.buckets.get_mut(&Self::bucket_of(e.meta.pos)) {
            v.retain(|&x| x != id);
        }
        Some(e.size_bytes)
    }

    /// The cache's logical access clock (monotonic; bumped on insert and
    /// hit).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Raises the logical clock to at least `clock`.
    ///
    /// A fleet store sharing one recency order across many shard caches
    /// stamps every shard from a global clock; without this, each
    /// shard's private clock would restart at zero and cross-shard LRU
    /// comparisons would be meaningless.
    pub fn advance_clock(&mut self, clock: u64) {
        self.clock = self.clock.max(clock);
    }

    /// The `last_access` stamp of the least recently used entry, if any.
    pub fn oldest_access(&self) -> Option<u64> {
        self.entries.values().map(|e| e.last_access).min()
    }

    /// The least recently used entry's stamp and payload, if any. A
    /// fleet store's cost-aware admission scores a candidate frame
    /// against the globally-oldest entry — the one an over-budget
    /// insert would evict.
    pub fn oldest_entry(&self) -> Option<(u64, &T)> {
        self.entries
            .values()
            .min_by_key(|e| e.last_access)
            .map(|e| (e.last_access, &e.payload))
    }

    /// Evicts the least recently used entry regardless of the configured
    /// policy, returning its payload size. Used by a fleet store to run
    /// one global LRU across shards (the shard holding the globally
    /// oldest entry is asked to evict).
    pub fn evict_lru(&mut self) -> Option<u64> {
        let id = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_access)
            .map(|(&id, _)| id)?;
        let e = self.entries.remove(&id).expect("entry just found");
        self.bytes -= e.size_bytes;
        if let Some(v) = self.buckets.get_mut(&Self::bucket_of(e.meta.pos)) {
            v.retain(|&x| x != id);
        }
        self.stats.evictions += 1;
        Some(e.size_bytes)
    }

    fn find_best(&self, query: &CacheQuery) -> Option<u64> {
        let radius = query.dist_thresh.max(0.0);
        let reach = (radius / BUCKET_M).ceil() as i32 + 1;
        let (bx, bz) = Self::bucket_of(query.pos);
        let mut best: Option<(u64, f64)> = None;
        for dz in -reach..=reach {
            for dx in -reach..=reach {
                let Some(ids) = self.buckets.get(&(bx + dx, bz + dz)) else {
                    continue;
                };
                for &id in ids {
                    let e = &self.entries[&id];
                    let Some(mode) = self.config.version.mode_for(e.source) else {
                        continue;
                    };
                    let qualifies = match mode {
                        MatchMode::Exact => e.meta.grid == query.grid,
                        MatchMode::Similar => {
                            e.meta.leaf == query.leaf
                                && e.meta.near_hash == query.near_hash
                                && e.meta.pos.distance(query.pos) <= radius
                        }
                    };
                    if !qualifies {
                        continue;
                    }
                    let d = e.meta.pos.distance(query.pos);
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        best = Some((id, d));
                    }
                }
            }
        }
        best.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(ix: i32, iz: i32, leaf: u32, hash: u64) -> FrameMeta {
        FrameMeta {
            grid: GridPoint::new(ix, iz),
            pos: Vec2::new(ix as f64 * 0.1, iz as f64 * 0.1),
            leaf: LeafId(leaf),
            near_hash: hash,
        }
    }

    fn query_for(m: &FrameMeta, dist_thresh: f64) -> CacheQuery {
        CacheQuery {
            grid: m.grid,
            pos: m.pos,
            leaf: m.leaf,
            near_hash: m.near_hash,
            dist_thresh,
        }
    }

    #[test]
    fn exact_version_hits_only_identical_grid_point() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V1));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        assert_eq!(c.lookup(&query_for(&m, 5.0)), Some(&42));
        // A neighbouring grid point misses under exact matching.
        let near = meta(11, 10, 0, 7);
        assert_eq!(c.lookup(&query_for(&near, 5.0)), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn similar_version_hits_within_dist_thresh() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        let near = meta(12, 10, 0, 7); // 0.2 m away
        assert_eq!(c.lookup(&query_for(&near, 0.3)), Some(&42));
        let far = meta(60, 10, 0, 7); // 5 m away
        assert_eq!(c.lookup(&query_for(&far, 0.3)), None);
    }

    #[test]
    fn similar_match_requires_same_leaf() {
        // Criterion 2: different leaf regions may use different cutoffs,
        // leaving a near/far gap.
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        let mut q = query_for(&meta(11, 10, 1, 7), 5.0);
        q.pos = m.pos;
        assert_eq!(c.lookup(&q), None, "cross-leaf reuse must be rejected");
    }

    #[test]
    fn similar_match_requires_same_near_set() {
        // Criterion 3: a different near-object set would leave holes
        // after merging.
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        let q = query_for(&meta(11, 10, 0, 8), 5.0);
        assert_eq!(c.lookup(&q), None, "near-set mismatch must be rejected");
    }

    #[test]
    fn closest_qualifying_frame_wins() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let a = meta(0, 0, 0, 7);
        let b = meta(8, 0, 0, 7);
        c.insert(a, FrameSource::SelfPrefetch, 1, 100, a.pos);
        c.insert(b, FrameSource::SelfPrefetch, 2, 100, b.pos);
        // Query at 0.5 m: closer to b (0.8 m) than a (0.0 m)? a is at 0,
        // query at (0.5, 0): a is 0.5 away, b is 0.3 away -> b wins.
        let mut q = query_for(&meta(5, 0, 0, 7), 2.0);
        q.pos = Vec2::new(0.5, 0.0);
        assert_eq!(c.lookup(&q), Some(&2));
    }

    #[test]
    fn version_gating_of_sources() {
        // V1/V3 ignore overheard frames entirely; V2/V4 ignore
        // self-prefetched ones.
        let m = meta(10, 10, 0, 7);
        let mut v3: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        v3.insert(m, FrameSource::Overheard, 42, 100, m.pos);
        assert!(v3.is_empty(), "V3 must not admit overheard frames");

        let mut v4: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V4));
        v4.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        assert!(v4.is_empty(), "V4 must not admit self-prefetched frames");
        v4.insert(m, FrameSource::Overheard, 42, 100, m.pos);
        assert_eq!(v4.len(), 1);
        assert_eq!(v4.lookup(&query_for(&meta(11, 10, 0, 7), 0.5)), Some(&42));
    }

    #[test]
    fn v5_admits_both_sources() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V5));
        let a = meta(0, 0, 0, 7);
        let b = meta(100, 0, 0, 7);
        c.insert(a, FrameSource::SelfPrefetch, 1, 100, a.pos);
        c.insert(b, FrameSource::Overheard, 2, 100, b.pos);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&query_for(&a, 0.5)), Some(&1));
        assert_eq!(c.lookup(&query_for(&b, 0.5)), Some(&2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let config = CacheConfig {
            capacity_bytes: 250,
            policy: EvictionPolicy::Lru,
            version: CacheVersion::V3,
        };
        let mut c: FrameCache<u32> = FrameCache::new(config);
        let a = meta(0, 0, 0, 7);
        let b = meta(50, 0, 0, 7);
        c.insert(a, FrameSource::SelfPrefetch, 1, 100, a.pos);
        c.insert(b, FrameSource::SelfPrefetch, 2, 100, b.pos);
        // Touch a so b becomes LRU.
        assert!(c.lookup(&query_for(&a, 0.5)).is_some());
        let d = meta(100, 0, 0, 7);
        c.insert(d, FrameSource::SelfPrefetch, 3, 100, d.pos);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&query_for(&a, 0.5)), "recently used entry kept");
        assert!(!c.peek(&query_for(&b, 0.5)), "LRU entry evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn flf_evicts_furthest_from_player() {
        let config = CacheConfig {
            capacity_bytes: 250,
            policy: EvictionPolicy::Flf,
            version: CacheVersion::V3,
        };
        let mut c: FrameCache<u32> = FrameCache::new(config);
        let near = meta(0, 0, 0, 7);
        let far = meta(500, 0, 0, 7); // 50 m away
        c.insert(near, FrameSource::SelfPrefetch, 1, 100, Vec2::ZERO);
        c.insert(far, FrameSource::SelfPrefetch, 2, 100, Vec2::ZERO);
        // Player is at origin; inserting a third entry evicts `far`.
        let c3 = meta(5, 0, 0, 7);
        c.insert(c3, FrameSource::SelfPrefetch, 3, 100, Vec2::ZERO);
        assert!(c.peek(&query_for(&near, 0.5)));
        assert!(!c.peek(&query_for(&far, 0.5)), "furthest entry evicted");
    }

    #[test]
    fn peek_does_not_affect_stats() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        assert!(c.peek(&query_for(&m, 0.5)));
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = CacheStats {
            hits: 8,
            misses: 2,
            evictions: 0,
        };
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn version_labels() {
        assert_eq!(CacheVersion::V1.label(), "Version 1");
        assert_eq!(CacheVersion::V5.label(), "Version 5");
        assert_eq!(CacheVersion::ALL.len(), 5);
    }

    #[test]
    fn fleet_version_admits_fleet_frames_session_free() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::FLEET));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::Fleet, 42, 100, m.pos);
        assert_eq!(c.len(), 1);
        // Similar matching applies: a nearby grid point in the same
        // leaf with the same near set hits.
        assert_eq!(c.lookup(&query_for(&meta(11, 10, 0, 7), 0.5)), Some(&42));
        // Overheard frames stay excluded (fleet reuse is server-side).
        c.insert(meta(20, 20, 0, 7), FrameSource::Overheard, 9, 100, m.pos);
        assert_eq!(c.len(), 1);
        assert_eq!(CacheVersion::FLEET.label(), "Fleet");
    }

    #[test]
    fn paper_versions_reject_fleet_frames() {
        for v in CacheVersion::ALL {
            let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(v));
            let m = meta(10, 10, 0, 7);
            c.insert(m, FrameSource::Fleet, 42, 100, m.pos);
            assert!(c.is_empty(), "{} must not admit fleet frames", v.label());
        }
    }

    #[test]
    fn global_clock_orders_lru_across_caches() {
        // Two shard caches stamped from one global clock: the entry
        // inserted earliest (globally) is the one evict_lru removes.
        let mut a: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::FLEET));
        let mut b: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::FLEET));
        a.advance_clock(10);
        let ma = meta(0, 0, 0, 7);
        a.insert(ma, FrameSource::Fleet, 1, 100, ma.pos);
        b.advance_clock(a.clock() + 5);
        let mb = meta(50, 0, 0, 7);
        b.insert(mb, FrameSource::Fleet, 2, 100, mb.pos);
        assert!(a.oldest_access() < b.oldest_access());
        assert_eq!(a.evict_lru(), Some(100));
        assert!(a.is_empty());
        assert_eq!(a.stats().evictions, 1);
        assert_eq!(b.oldest_access(), Some(17));
        assert_eq!(b.evict_lru(), Some(100));
        assert_eq!(b.evict_lru(), None);
    }

    #[test]
    fn zero_dist_thresh_still_matches_same_position() {
        let mut c: FrameCache<u32> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
        let m = meta(10, 10, 0, 7);
        c.insert(m, FrameSource::SelfPrefetch, 42, 100, m.pos);
        assert_eq!(c.lookup(&query_for(&m, 0.0)), Some(&42));
    }
}
