//! Property-based tests for frame buffers and metrics.

use coterie_frame::{mse, psnr, ssim_with, ssim_with_simd, Cdf, LumaFrame, SsimOptions};
use coterie_parallel::simd::{self, SimdLevel};
use proptest::prelude::*;

/// Strategy: a small frame with arbitrary pixel content.
fn frame_strategy() -> impl Strategy<Value = LumaFrame> {
    (16u32..40, 16u32..40).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..=1.0, (w * h) as usize)
            .prop_map(move |data| LumaFrame::from_raw(w, h, data))
    })
}

fn paired_frames() -> impl Strategy<Value = (LumaFrame, LumaFrame)> {
    (16u32..32, 16u32..32).prop_flat_map(|(w, h)| {
        let n = (w * h) as usize;
        (
            proptest::collection::vec(0.0f32..=1.0, n),
            proptest::collection::vec(0.0f32..=1.0, n),
        )
            .prop_map(move |(a, b)| (LumaFrame::from_raw(w, h, a), LumaFrame::from_raw(w, h, b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ssim_self_is_one(f in frame_strategy()) {
        let opts = SsimOptions::fast();
        let s = ssim_with(&f, &f, &opts);
        prop_assert!((s - 1.0).abs() < 1e-9, "self-SSIM {s}");
    }

    #[test]
    fn ssim_is_symmetric_and_bounded((a, b) in paired_frames()) {
        let opts = SsimOptions::fast();
        let ab = ssim_with(&a, &b, &opts);
        let ba = ssim_with(&b, &a, &opts);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab <= 1.0 + 1e-12);
        prop_assert!(ab >= -1.0 - 1e-12);
    }

    #[test]
    fn mse_zero_iff_equal((a, b) in paired_frames()) {
        let e = mse(&a, &b);
        prop_assert!(e >= 0.0);
        if a == b {
            prop_assert_eq!(e, 0.0);
        }
        prop_assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn psnr_decreases_with_noise(f in frame_strategy(), noise in 0.05f32..0.3) {
        let mut little = f.clone();
        let mut lots = f.clone();
        for (i, (p, q)) in little.data_mut().iter_mut()
            .zip(lots.data_mut().iter_mut()).enumerate() {
            let delta = if i % 2 == 0 { noise } else { -noise };
            *p = (*p + delta * 0.2).clamp(0.0, 1.0);
            *q = (*q + delta).clamp(0.0, 1.0);
        }
        prop_assert!(psnr(&f, &little) >= psnr(&f, &lots));
    }

    #[test]
    fn bilinear_sample_within_pixel_range(f in frame_strategy(), fx in -5.0f32..50.0, fy in -5.0f32..50.0) {
        let v = f.sample_bilinear(fx, fy);
        let min = f.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = f.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
    }

    #[test]
    fn u8_roundtrip_error_bounded(f in frame_strategy()) {
        let g = LumaFrame::from_u8(f.width(), f.height(), &f.to_u8());
        for (a, b) in f.data().iter().zip(g.data()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn cdf_fractions_are_monotone(samples in proptest::collection::vec(0.0f64..1.0, 1..200), x in 0.0f64..1.0, dx in 0.0f64..0.5) {
        let cdf = Cdf::from_samples(samples);
        prop_assert!(cdf.fraction_at_most(x) <= cdf.fraction_at_most(x + dx) + 1e-12);
        prop_assert!(cdf.fraction_above(x) >= cdf.fraction_above(x + dx) - 1e-12);
        let total = cdf.fraction_at_most(x) + cdf.fraction_above(x);
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantiles_are_monotone(samples in proptest::collection::vec(-10.0f64..10.0, 1..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let cdf = Cdf::from_samples(samples);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
    }

    #[test]
    fn ssim_parity_across_simd_levels((a, b) in paired_frames()) {
        // Dense (stride 1) path: every dispatch level must agree with
        // scalar within the spec'd ≤1e-5 relative tolerance (the kernels
        // replicate scalar association, so in practice they are
        // bit-identical and this bound is loose by design).
        let opts = SsimOptions::default();
        let want = ssim_with_simd(&a, &b, &opts, SimdLevel::Scalar);
        for level in simd::available_levels() {
            let got = ssim_with_simd(&a, &b, &opts, level);
            let tol = 1e-5 * want.abs().max(1.0);
            prop_assert!((got - want).abs() <= tol, "SSIM diverged at {level:?}: {got} vs {want}");
        }
        // Strided subsampling keeps the scalar walk at every level.
        let fast = SsimOptions::fast();
        let want = ssim_with_simd(&a, &b, &fast, SimdLevel::Scalar);
        for level in simd::available_levels() {
            let got = ssim_with_simd(&a, &b, &fast, level);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "strided SSIM diverged at {:?}", level);
        }
    }

    #[test]
    fn summary_bounds_hold(samples in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
        let cdf = Cdf::from_samples(samples.clone());
        let s = cdf.summary();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert_eq!(s.count, samples.len());
    }
}
