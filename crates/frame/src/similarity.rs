//! Image-quality metrics: SSIM (Wang et al. 2004), MSE, PSNR.
//!
//! SSIM is the metric the paper uses throughout — for frame-similarity
//! CDFs (Figures 1, 2, 5), for the cache `dist_thresh` calibration
//! (SSIM > 0.9, §5.3) and for visual quality (Table 7). This is the
//! standard single-scale implementation: 11×11 Gaussian window with
//! σ = 1.5 and the usual stabilizing constants for dynamic range 1.0,
//! evaluated with a two-pass separable Gaussian over the five moment
//! planes (O(k) per window instead of O(k²)).
//!
//! The dense (stride 1) path stores the five moment planes
//! structure-of-arrays and runs both Gaussian passes through the
//! runtime-dispatched SIMD kernels in [`coterie_parallel::simd`]; the
//! kernels replicate the scalar association exactly, so every dispatch
//! level produces bit-identical SSIM values. Strided subsampling keeps
//! the original interleaved scalar walk (its window centers are not
//! contiguous, so the row kernel does not apply).

use crate::luma::LumaFrame;
use coterie_parallel::simd::{self, MomentRowsMut, SimdLevel};

/// Parameters of the SSIM computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimOptions {
    /// Gaussian window half-size; full window is `2*radius + 1`.
    pub radius: u32,
    /// Gaussian sigma.
    pub sigma: f64,
    /// Luminance stabilizer `C1 = (k1 * L)^2`.
    pub c1: f64,
    /// Contrast stabilizer `C2 = (k2 * L)^2`.
    pub c2: f64,
    /// Stride between evaluated window centers (1 = dense; larger values
    /// subsample for speed on large batches with negligible error).
    pub stride: u32,
}

impl Default for SsimOptions {
    /// The canonical Wang et al. constants for dynamic range `L = 1.0`:
    /// `k1 = 0.01`, `k2 = 0.03`, 11×11 window, σ = 1.5, dense stride.
    fn default() -> Self {
        SsimOptions {
            radius: 5,
            sigma: 1.5,
            c1: (0.01f64).powi(2),
            c2: (0.03f64).powi(2),
            stride: 1,
        }
    }
}

impl SsimOptions {
    /// A faster variant for bulk experiments: stride-2 window placement.
    pub fn fast() -> Self {
        SsimOptions {
            stride: 2,
            ..Default::default()
        }
    }

    fn kernel(&self) -> Vec<f64> {
        let n = (2 * self.radius + 1) as i64;
        let mut k = Vec::with_capacity(n as usize);
        let denom = 2.0 * self.sigma * self.sigma;
        for i in 0..n {
            let d = (i - self.radius as i64) as f64;
            k.push((-d * d / denom).exp());
        }
        let sum: f64 = k.iter().sum();
        for v in &mut k {
            *v /= sum;
        }
        k
    }
}

/// Mean SSIM between two frames with default options.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
///
/// ```
/// use coterie_frame::{LumaFrame, ssim};
/// let a = LumaFrame::from_fn(32, 32, |x, y| ((x ^ y) & 7) as f32 / 7.0);
/// assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
/// ```
pub fn ssim(a: &LumaFrame, b: &LumaFrame) -> f64 {
    ssim_with(a, b, &SsimOptions::default())
}

/// Mean SSIM with explicit options.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn ssim_with(a: &LumaFrame, b: &LumaFrame, opts: &SsimOptions) -> f64 {
    ssim_with_simd(a, b, opts, simd::detected_level())
}

/// Mean SSIM with explicit options and an explicit SIMD dispatch level
/// (all levels produce bit-identical results; useful for benches and
/// parity tests).
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn ssim_with_simd(a: &LumaFrame, b: &LumaFrame, opts: &SsimOptions, level: SimdLevel) -> f64 {
    let map = ssim_map_with_level(a, b, opts, level);
    if map.is_empty() {
        1.0
    } else {
        map.iter().sum::<f64>() / map.len() as f64
    }
}

/// Per-window SSIM values with default options (useful for inspecting
/// where two frames differ, e.g. the near-object band in Figure 3).
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn ssim_map(a: &LumaFrame, b: &LumaFrame) -> Vec<f64> {
    ssim_map_with(a, b, &SsimOptions::default())
}

/// Rows below this threshold run the horizontal moment pass serially;
/// at or above it, the pass fans out on [`coterie_parallel::par_for_each`]
/// over disjoint row bands (the default 256×128 frames stay serial —
/// thread spawn would cost more than the pass).
const PAR_MIN_ROWS: usize = 256;

fn ssim_map_with(a: &LumaFrame, b: &LumaFrame, opts: &SsimOptions) -> Vec<f64> {
    ssim_map_with_level(a, b, opts, simd::detected_level())
}

/// The SSIM window formula applied to the five blurred moments.
#[inline]
fn ssim_term(m: [f64; 5], opts: &SsimOptions) -> f64 {
    let [mu_a, mu_b, aa, bb, ab] = m;
    let var_a = (aa - mu_a * mu_a).max(0.0);
    let var_b = (bb - mu_b * mu_b).max(0.0);
    let cov = ab - mu_a * mu_b;
    let numerator = (2.0 * mu_a * mu_b + opts.c1) * (2.0 * cov + opts.c2);
    let denominator = (mu_a * mu_a + mu_b * mu_b + opts.c1) * (var_a + var_b + opts.c2);
    numerator / denominator
}

fn ssim_map_with_level(
    a: &LumaFrame,
    b: &LumaFrame,
    opts: &SsimOptions,
    level: SimdLevel,
) -> Vec<f64> {
    assert_eq!(a.width(), b.width(), "frame widths differ");
    assert_eq!(a.height(), b.height(), "frame heights differ");
    let w = a.width() as usize;
    let h = a.height() as usize;
    let kernel = opts.kernel();
    let r = opts.radius as usize;
    if w < 2 * r + 1 || h < 2 * r + 1 {
        // No window fits.
        return Vec::new();
    }
    let stride = opts.stride.max(1) as usize;
    if stride == 1 {
        return ssim_map_dense_soa(a, b, opts, &kernel, level);
    }
    let ax = a.data();
    let bx = b.data();

    // The Gaussian window is separable, so instead of an O(k²) sum per
    // window we blur each of the five moment planes (a, b, a², b², ab)
    // horizontally once per row (pass 1), then combine the blurred rows
    // vertically at each window center (pass 2): O(k) per output. The
    // planes stay interleaved as [f64; 5] so both passes touch memory
    // sequentially.
    let xs: Vec<usize> = (r..w - r).step_by(stride).collect();
    let n_x = xs.len();
    let mut moments = vec![[0.0f64; 5]; h * n_x];
    let blur_rows = |rows: &mut [[f64; 5]], y0: usize| {
        for (row_i, out_row) in rows.chunks_mut(n_x).enumerate() {
            let row = (y0 + row_i) * w;
            for (ci, &x) in xs.iter().enumerate() {
                let mut m = [0.0f64; 5];
                for (ki, &kx) in kernel.iter().enumerate() {
                    let idx = row + x - r + ki;
                    let va = ax[idx] as f64;
                    let vb = bx[idx] as f64;
                    m[0] += kx * va;
                    m[1] += kx * vb;
                    m[2] += kx * va * va;
                    m[3] += kx * vb * vb;
                    m[4] += kx * va * vb;
                }
                out_row[ci] = m;
            }
        }
    };
    if h >= PAR_MIN_ROWS {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(h);
        let rows_per = h.div_ceil(threads);
        let mut bands = Vec::with_capacity(threads);
        let mut rest = moments.as_mut_slice();
        let mut y0 = 0usize;
        while y0 < h {
            let rows = rows_per.min(h - y0);
            let (head, tail) = rest.split_at_mut(rows * n_x);
            rest = tail;
            bands.push((y0, head));
            y0 += rows;
        }
        coterie_parallel::par_for_each(bands, |(y0, rows)| blur_rows(rows, y0));
    } else {
        blur_rows(&mut moments, 0);
    }

    // Pass 2: vertical combination at the strided centers, in the same
    // (y outer, x inner) order the dense evaluation produced.
    let ys: Vec<usize> = (r..h - r).step_by(stride).collect();
    let mut out = Vec::with_capacity(ys.len() * n_x);
    for &y in &ys {
        for ci in 0..n_x {
            let mut m = [0.0f64; 5];
            for (ki, &ky) in kernel.iter().enumerate() {
                let src = &moments[(y - r + ki) * n_x + ci];
                m[0] += ky * src[0];
                m[1] += ky * src[1];
                m[2] += ky * src[2];
                m[3] += ky * src[3];
                m[4] += ky * src[4];
            }
            out.push(ssim_term(m, opts));
        }
    }
    out
}

/// Dense (stride 1) SSIM map with structure-of-arrays moment planes and
/// SIMD row kernels.
///
/// Pass 1 runs [`simd::ssim_moments_row`] straight over the `f32` pixel
/// rows (the kernel widens in register — exact, matching the scalar
/// `as f64`), banded across threads above [`PAR_MIN_ROWS`] rows exactly
/// like the strided path. Pass 2 is one [`simd::ssim_windows_row`] call
/// per output row: vertical taps accumulate in registers and feed the
/// SSIM formula without touching memory in between — the same
/// kernel-tap accumulation order as the scalar walk, so the result is
/// bit-identical at every dispatch level.
///
/// The five moment planes live in a thread-local scratch buffer: pass 1
/// overwrites every cell before pass 2 reads it, so reusing the
/// allocation across calls (SSIM runs per prefetch candidate, many
/// times a frame) skips a ~1 MB `calloc` + memset per call without
/// affecting any value.
fn ssim_map_dense_soa(
    a: &LumaFrame,
    b: &LumaFrame,
    opts: &SsimOptions,
    kernel: &[f64],
    level: SimdLevel,
) -> Vec<f64> {
    let w = a.width() as usize;
    let h = a.height() as usize;
    let r = opts.radius as usize;
    let n_x = w - 2 * r;
    let ax = a.data();
    let bx = b.data();

    thread_local! {
        static MOMENT_SCRATCH: std::cell::RefCell<Vec<f64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    MOMENT_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let plane = h * n_x;
        if scratch.len() < 5 * plane {
            scratch.resize(5 * plane, 0.0);
        }
        let (p_a, rest) = scratch.split_at_mut(plane);
        let (p_b, rest) = rest.split_at_mut(plane);
        let (p_aa, rest) = rest.split_at_mut(plane);
        let (p_bb, p_ab) = rest.split_at_mut(plane);
        let p_ab = &mut p_ab[..plane];

        // One band of the five moment planes: `rows` consecutive rows
        // starting at absolute row `y0`.
        struct MomentBand<'a> {
            y0: usize,
            rows: usize,
            a: &'a mut [f64],
            b: &'a mut [f64],
            aa: &'a mut [f64],
            bb: &'a mut [f64],
            ab: &'a mut [f64],
        }
        let blur_band = |band: MomentBand<'_>| {
            let MomentBand {
                y0,
                rows,
                a,
                b,
                aa,
                bb,
                ab,
            } = band;
            for i in 0..rows {
                let row = (y0 + i) * w;
                let o = i * n_x;
                let mut out = MomentRowsMut {
                    a: &mut a[o..o + n_x],
                    b: &mut b[o..o + n_x],
                    aa: &mut aa[o..o + n_x],
                    bb: &mut bb[o..o + n_x],
                    ab: &mut ab[o..o + n_x],
                };
                simd::ssim_moments_row(
                    &ax[row..row + w],
                    &bx[row..row + w],
                    kernel,
                    &mut out,
                    level,
                );
            }
        };
        if h >= PAR_MIN_ROWS {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(h);
            let rows_per = h.div_ceil(threads);
            let mut bands = Vec::with_capacity(threads);
            let (mut ra, mut rb, mut raa, mut rbb, mut rab) =
                (&mut *p_a, &mut *p_b, &mut *p_aa, &mut *p_bb, &mut *p_ab);
            let mut y0 = 0usize;
            while y0 < h {
                let rows = rows_per.min(h - y0);
                let n = rows * n_x;
                let (ha, ta) = ra.split_at_mut(n);
                let (hb, tb) = rb.split_at_mut(n);
                let (haa, taa) = raa.split_at_mut(n);
                let (hbb, tbb) = rbb.split_at_mut(n);
                let (hab, tab) = rab.split_at_mut(n);
                (ra, rb, raa, rbb, rab) = (ta, tb, taa, tbb, tab);
                bands.push(MomentBand {
                    y0,
                    rows,
                    a: ha,
                    b: hb,
                    aa: haa,
                    bb: hbb,
                    ab: hab,
                });
                y0 += rows;
            }
            coterie_parallel::par_for_each(bands, blur_band);
        } else {
            blur_band(MomentBand {
                y0: 0,
                rows: h,
                a: &mut *p_a,
                b: &mut *p_b,
                aa: &mut *p_aa,
                bb: &mut *p_bb,
                ab: &mut *p_ab,
            });
        }

        // Pass 2: fused vertical Gaussian + SSIM formula, one kernel call
        // per output row over the `kernel.len()` blurred rows above it.
        let mut out = vec![0.0f64; (h - 2 * r) * n_x];
        for (oy, y) in (r..h - r).enumerate() {
            let base = (y - r) * n_x;
            let end = base + kernel.len() * n_x;
            let rows = simd::MomentRows {
                a: &p_a[base..end],
                b: &p_b[base..end],
                aa: &p_aa[base..end],
                bb: &p_bb[base..end],
                ab: &p_ab[base..end],
            };
            simd::ssim_windows_row(
                &rows,
                n_x,
                kernel,
                opts.c1,
                opts.c2,
                &mut out[oy * n_x..(oy + 1) * n_x],
                level,
            );
        }
        out
    })
}

/// Mean squared error between two frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn mse(a: &LumaFrame, b: &LumaFrame) -> f64 {
    assert_eq!(a.width(), b.width(), "frame widths differ");
    assert_eq!(a.height(), b.height(), "frame heights differ");
    let n = a.pixel_count();
    if n == 0 {
        return 0.0;
    }
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / n as f64
}

/// Peak signal-to-noise ratio in dB (peak = 1.0). Returns `f64::INFINITY`
/// for identical frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn psnr(a: &LumaFrame, b: &LumaFrame) -> f64 {
    let e = mse(a, b);
    if e <= 0.0 {
        f64::INFINITY
    } else {
        -10.0 * e.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(seed: u32) -> LumaFrame {
        LumaFrame::from_fn(48, 32, |x, y| {
            let v = (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) % 97;
            v as f32 / 96.0
        })
    }

    #[test]
    fn identical_frames_have_ssim_one() {
        let f = textured(7);
        assert!((ssim(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_frames_have_low_ssim() {
        let a = textured(1);
        let b = textured(999);
        let s = ssim(&a, &b);
        assert!(s < 0.5, "unrelated textures should have low SSIM, got {s}");
    }

    #[test]
    fn small_noise_keeps_ssim_high() {
        let a = textured(3);
        let mut b = a.clone();
        for (i, v) in b.data_mut().iter_mut().enumerate() {
            // +-0.004 noise
            *v = (*v + ((i % 5) as f32 - 2.0) * 0.002).clamp(0.0, 1.0);
        }
        let s = ssim(&a, &b);
        assert!(s > 0.95, "tiny noise should keep SSIM high, got {s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = textured(3);
        let mut b = a.clone();
        b.set(10, 10, 1.0);
        b.set(20, 5, 0.0);
        let s1 = ssim(&a, &b);
        let s2 = ssim(&b, &a);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn ssim_bounded_above_by_one() {
        let a = textured(5);
        let mut b = a.clone();
        b.set(0, 0, 0.9);
        assert!(ssim(&a, &b) <= 1.0 + 1e-12);
    }

    #[test]
    fn constant_frames_identical_means() {
        let a = LumaFrame::filled(32, 32, 0.5);
        let b = LumaFrame::filled(32, 32, 0.5);
        assert!((ssim(&a, &b) - 1.0).abs() < 1e-9);
        // Different constants: luminance term penalizes.
        let c = LumaFrame::filled(32, 32, 0.9);
        assert!(ssim(&a, &c) < 0.9);
    }

    #[test]
    fn fast_stride_close_to_dense() {
        let a = textured(11);
        let mut b = a.clone();
        for v in b.data_mut().iter_mut().step_by(7) {
            *v = (*v * 0.9).clamp(0.0, 1.0);
        }
        let dense = ssim_with(&a, &b, &SsimOptions::default());
        let fast = ssim_with(&a, &b, &SsimOptions::fast());
        assert!((dense - fast).abs() < 0.02, "dense {dense} vs fast {fast}");
    }

    #[test]
    fn ssim_map_has_expected_size() {
        let a = textured(2);
        let map = ssim_map(&a, &a);
        // Window centers: (48-10) x (32-10) with radius 5.
        assert_eq!(map.len(), (48 - 10) * (32 - 10));
        assert!(map.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn frame_smaller_than_window_is_trivially_similar() {
        let a = LumaFrame::filled(4, 4, 0.2);
        let b = LumaFrame::filled(4, 4, 0.8);
        // No window fits: defined as 1.0 (no evidence of difference).
        assert_eq!(ssim(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_sizes_panic() {
        let a = LumaFrame::new(8, 8);
        let b = LumaFrame::new(9, 8);
        let _ = ssim(&a, &b);
    }

    #[test]
    fn mse_and_psnr_basics() {
        let a = LumaFrame::filled(8, 8, 0.0);
        let b = LumaFrame::filled(8, 8, 0.5);
        assert!((mse(&a, &b) - 0.25).abs() < 1e-9);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let p = psnr(&a, &b);
        assert!((p - 6.0206).abs() < 0.01, "psnr {p}");
    }

    #[test]
    fn gaussian_kernel_normalized() {
        let opts = SsimOptions::default();
        let k = opts.kernel();
        assert_eq!(k.len(), 11);
        assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Symmetric and peaked at center.
        assert!((k[0] - k[10]).abs() < 1e-15);
        assert!(k[5] > k[0]);
    }

    /// The dense O(k²) evaluation the separable implementation replaced,
    /// kept as the oracle it must agree with.
    fn ssim_map_dense(a: &LumaFrame, b: &LumaFrame, opts: &SsimOptions) -> Vec<f64> {
        let w = a.width() as i64;
        let h = a.height() as i64;
        let kernel = opts.kernel();
        let r = opts.radius as i64;
        let stride = opts.stride.max(1) as i64;
        let ax = a.data();
        let bx = b.data();
        let mut out = Vec::new();
        let mut y = r;
        while y < h - r {
            let mut x = r;
            while x < w - r {
                let (mut mu_a, mut mu_b) = (0.0f64, 0.0f64);
                let (mut aa, mut bb, mut ab) = (0.0f64, 0.0f64, 0.0f64);
                for dy in -r..=r {
                    let wy = kernel[(dy + r) as usize];
                    let row = ((y + dy) * w) as usize;
                    for dx in -r..=r {
                        let wxy = wy * kernel[(dx + r) as usize];
                        let va = ax[row + (x + dx) as usize] as f64;
                        let vb = bx[row + (x + dx) as usize] as f64;
                        mu_a += wxy * va;
                        mu_b += wxy * vb;
                        aa += wxy * va * va;
                        bb += wxy * vb * vb;
                        ab += wxy * va * vb;
                    }
                }
                let var_a = (aa - mu_a * mu_a).max(0.0);
                let var_b = (bb - mu_b * mu_b).max(0.0);
                let cov = ab - mu_a * mu_b;
                let numerator = (2.0 * mu_a * mu_b + opts.c1) * (2.0 * cov + opts.c2);
                let denominator = (mu_a * mu_a + mu_b * mu_b + opts.c1) * (var_a + var_b + opts.c2);
                out.push(numerator / denominator);
                x += stride;
            }
            y += stride;
        }
        out
    }

    #[test]
    fn separable_matches_dense_reference() {
        let a = textured(21);
        let mut b = a.clone();
        for (i, v) in b.data_mut().iter_mut().enumerate() {
            *v = (*v + ((i % 11) as f32 - 5.0) * 0.01).clamp(0.0, 1.0);
        }
        for opts in [SsimOptions::default(), SsimOptions::fast()] {
            let dense = ssim_map_dense(&a, &b, &opts);
            let separable = ssim_map_with(&a, &b, &opts);
            assert_eq!(dense.len(), separable.len());
            for (i, (d, s)) in dense.iter().zip(&separable).enumerate() {
                assert!(
                    (d - s).abs() < 1e-10,
                    "window {i}: dense {d} vs separable {s} (opts {opts:?})"
                );
            }
        }
    }

    #[test]
    fn parallel_pass_matches_dense_on_tall_frames() {
        // Tall enough to cross PAR_MIN_ROWS and take the banded path.
        let a = LumaFrame::from_fn(24, 300, |x, y| {
            ((x.wrapping_mul(37) ^ y.wrapping_mul(23)) % 89) as f32 / 88.0
        });
        let mut b = a.clone();
        for v in b.data_mut().iter_mut().step_by(13) {
            *v = (*v * 0.85).clamp(0.0, 1.0);
        }
        let opts = SsimOptions::default();
        let dense = ssim_map_dense(&a, &b, &opts);
        let separable = ssim_map_with(&a, &b, &opts);
        assert_eq!(dense.len(), separable.len());
        for (d, s) in dense.iter().zip(&separable) {
            assert!((d - s).abs() < 1e-10, "dense {d} vs separable {s}");
        }
    }

    #[test]
    fn dispatch_levels_are_bit_identical() {
        let a = textured(21);
        let mut b = a.clone();
        for (i, v) in b.data_mut().iter_mut().enumerate() {
            *v = (*v + ((i % 13) as f32 - 6.0) * 0.01).clamp(0.0, 1.0);
        }
        let opts = SsimOptions::default();
        let base = ssim_map_with_level(&a, &b, &opts, SimdLevel::Scalar);
        for level in coterie_parallel::simd::available_levels() {
            let got = ssim_map_with_level(&a, &b, &opts, level);
            assert_eq!(base.len(), got.len());
            for (i, (x, y)) in base.iter().zip(&got).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{level:?} window {i}: {x} vs {y}");
            }
            let s = ssim_with_simd(&a, &b, &opts, level);
            let s0 = ssim_with_simd(&a, &b, &opts, SimdLevel::Scalar);
            assert_eq!(s.to_bits(), s0.to_bits(), "{level:?} mean");
        }
    }

    #[test]
    fn near_object_style_shift_lowers_ssim_more_than_far_shift() {
        // Emulates the "near-object" effect: shifting a large block
        // (near object) by 2 px hurts SSIM much more than shifting a
        // small block (far object).
        let base = |big_at: u32, small_at: u32| {
            LumaFrame::from_fn(64, 64, move |x, y| {
                let mut v = 0.5;
                // big 24x24 block
                if (big_at..big_at + 24).contains(&x) && (20..44).contains(&y) {
                    v = 0.9;
                }
                // small 3x3 block
                if (small_at..small_at + 3).contains(&x) && (2..5).contains(&y) {
                    v = 0.1;
                }
                v
            })
        };
        let reference = base(10, 50);
        let near_shift = base(14, 50); // big block moved 4 px
        let far_shift = base(10, 54); // small block moved 4 px
        let s_near = ssim(&reference, &near_shift);
        let s_far = ssim(&reference, &far_shift);
        assert!(
            s_near < s_far,
            "near-object shift ({s_near}) must hurt more than far shift ({s_far})"
        );
    }
}
