//! Statistics helpers: empirical CDFs and summaries.
//!
//! Every similarity experiment in the paper reports a CDF over SSIM
//! values (Figures 1, 2, 7) or the fraction exceeding the 0.9 quality
//! threshold. [`Cdf`] provides both views.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An empirical cumulative distribution over a sample of values.
///
/// ```
/// use coterie_frame::Cdf;
/// let cdf = Cdf::from_samples(vec![0.1, 0.5, 0.9, 0.95]);
/// assert_eq!(cdf.fraction_above(0.9), 0.25); // strictly above
/// assert_eq!(cdf.fraction_at_least(0.9), 0.5);
/// assert_eq!(cdf.quantile(0.5), 0.9); // nearest-rank median
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from samples. Non-finite samples are dropped.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Cdf { sorted }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `P(X <= x)`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// `P(X >= x)`.
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by nearest-rank on the sorted
    /// samples. Returns 0.0 for an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting,
    /// at most `max_points` of them.
    pub fn plot_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut pts = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            pts.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }

    /// Summary statistics of the sample.
    pub fn summary(&self) -> Summary {
        Summary::from_sorted(&self.sorted)
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::from_samples(iter)
    }
}

/// Summary statistics (count, mean, min/median/max, standard deviation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Sample standard deviation (0.0 when fewer than 2 samples).
    pub std_dev: f64,
    /// Minimum (0.0 when empty).
    pub min: f64,
    /// Median (0.0 when empty).
    pub median: f64,
    /// Maximum (0.0 when empty).
    pub max: f64,
}

impl Summary {
    /// Computes a summary from unsorted samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Summary {
        Cdf::from_samples(samples).summary()
    }

    fn from_sorted(sorted: &[f64]) -> Summary {
        let count = sorted.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: sorted[count / 2],
            max: sorted[count - 1],
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let cdf = Cdf::from_samples(vec![0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.fraction_at_most(0.4), 0.4);
        assert_eq!(cdf.fraction_above(0.4), 0.6);
        assert_eq!(cdf.fraction_at_least(0.4), 0.8);
        assert_eq!(cdf.quantile(0.0), 0.2);
        assert_eq!(cdf.quantile(1.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 0.6);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_above(0.5), 1.0 - 0.0);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
        assert!(cdf.plot_points(10).is_empty());
        assert_eq!(cdf.summary().count, 0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = Cdf::from_samples(vec![f64::NAN, 0.5, f64::INFINITY, 0.7]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn plot_points_monotone_and_complete() {
        let cdf: Cdf = (0..100).map(|i| i as f64 / 100.0).collect();
        let pts = cdf.plot_points(20);
        assert!(pts.len() <= 22);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(vec![0.42]);
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::from_samples(vec![1.0]);
        assert!(format!("{s}").contains("n=1"));
    }

    #[test]
    fn paper_style_threshold_query() {
        // "percentage of BE frames that exhibit an SSIM value larger than
        // 0.90" — the Figure 1 y-axis reading.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 0.85 + 0.10 * (i as f64 / 1000.0))
            .collect();
        let cdf = Cdf::from_samples(samples);
        let above = cdf.fraction_above(0.90);
        assert!((above - 0.5).abs() < 0.01, "{above}");
    }
}
