//! PGM (portable graymap) image export.
//!
//! Luma frames can be written as binary PGM files — viewable with any
//! image tool — so renders, near/far splits and codec artifacts can be
//! inspected by eye. Used by the `render_gallery` example.

use crate::luma::LumaFrame;
use std::io::{self, Write};
use std::path::Path;

/// Serializes a frame as binary PGM (P5) into a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(frame: &LumaFrame, mut writer: W) -> io::Result<()> {
    writeln!(writer, "P5")?;
    writeln!(writer, "{} {}", frame.width(), frame.height())?;
    writeln!(writer, "255")?;
    writer.write_all(&frame.to_u8())?;
    Ok(())
}

/// Writes a frame to a `.pgm` file.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_pgm<P: AsRef<Path>>(frame: &LumaFrame, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(frame, io::BufWriter::new(file))
}

/// Parses a binary PGM (P5, maxval 255) back into a frame.
///
/// # Errors
///
/// Returns `InvalidData` if the header or payload is malformed.
pub fn read_pgm(data: &[u8]) -> io::Result<LumaFrame> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    // Header: three whitespace-separated tokens after "P5".
    let mut pos = 0usize;
    let token = move |data: &[u8], pos: &mut usize| -> io::Result<String> {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        let start = *pos;
        while *pos < data.len() && !data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if start == *pos {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated header",
            ));
        }
        Ok(String::from_utf8_lossy(&data[start..*pos]).into_owned())
    };
    if token(data, &mut pos)? != "P5" {
        return Err(bad("not a binary PGM"));
    }
    let width: u32 = token(data, &mut pos)?
        .parse()
        .map_err(|_| bad("bad width"))?;
    let height: u32 = token(data, &mut pos)?
        .parse()
        .map_err(|_| bad("bad height"))?;
    let maxval: u32 = token(data, &mut pos)?
        .parse()
        .map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 supported"));
    }
    if width == 0 || height == 0 {
        return Err(bad("zero dimension"));
    }
    pos += 1; // single whitespace after maxval
    let need = (width * height) as usize;
    let payload = data
        .get(pos..pos + need)
        .ok_or_else(|| bad("truncated payload"))?;
    Ok(LumaFrame::from_u8(width, height, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_pgm() {
        let f = LumaFrame::from_fn(32, 20, |x, y| ((x + 2 * y) % 17) as f32 / 16.0);
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        let g = read_pgm(&buf).unwrap();
        assert_eq!(g.width(), 32);
        assert_eq!(g.height(), 20);
        for (a, b) in f.data().iter().zip(g.data()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn header_is_standard() {
        let f = LumaFrame::filled(4, 2, 0.5);
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]);
        assert!(text.starts_with("P5\n4 2\n255"));
        assert_eq!(buf.len(), "P5\n4 2\n255\n".len() + 8);
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("coterie_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.pgm");
        let f = LumaFrame::from_fn(16, 16, |x, _| x as f32 / 15.0);
        save_pgm(&f, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let g = read_pgm(&bytes).unwrap();
        assert_eq!(g.width(), 16);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pgm(b"hello world").is_err());
        assert!(read_pgm(b"P5\n4 4\n255\nxx").is_err()); // truncated
        assert!(read_pgm(b"P5\n0 4\n255\n").is_err()); // zero dim
        assert!(read_pgm(b"P5\n2 2\n65535\nxxxxxxxx").is_err()); // 16-bit
    }
}
