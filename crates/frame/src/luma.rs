//! Single-channel (luma) frame buffer.
//!
//! The renderer produces luma frames directly; SSIM is conventionally
//! computed on luma, and a single channel keeps the 10-minute-trace
//! similarity experiments tractable while preserving every structural
//! property the paper's metrics depend on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `width × height` luma image with values in `[0, 1]`, row-major.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct LumaFrame {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl LumaFrame {
    /// Creates a black frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Creates a frame filled with a constant value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: u32, height: u32, value: f32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        LumaFrame {
            width,
            height,
            data: vec![value; (width * height) as usize],
        }
    }

    /// Builds a frame from a pixel generator called as `f(x, y)`.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> f32) -> Self {
        let mut frame = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                frame.data[(y * width + x) as usize] = v;
            }
        }
        frame
    }

    /// Reconstructs a frame from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_raw(width: u32, height: u32, data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        assert_eq!(
            data.len(),
            (width * height) as usize,
            "data length must match dimensions"
        );
        LumaFrame {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Raw pixel data, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw pixel data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel row `y` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: u32) -> &[f32] {
        assert!(y < self.height, "row {y} out of bounds");
        let start = (y * self.width) as usize;
        &self.data[start..start + self.width as usize]
    }

    /// Pixel row `y` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: u32) -> &mut [f32] {
        assert!(y < self.height, "row {y} out of bounds");
        let start = (y * self.width) as usize;
        &mut self.data[start..start + self.width as usize]
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y * self.width + x) as usize]
    }

    /// Sets the pixel at `(x, y)`, clamping the value to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[(y * self.width + x) as usize] = value.clamp(0.0, 1.0);
    }

    /// Bilinear sample at fractional coordinates, clamped to the border.
    pub fn sample_bilinear(&self, fx: f32, fy: f32) -> f32 {
        let fx = fx.clamp(0.0, (self.width - 1) as f32);
        let fy = fy.clamp(0.0, (self.height - 1) as f32);
        let x0 = fx.floor() as u32;
        let y0 = fy.floor() as u32;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let v00 = self.get(x0, y0);
        let v10 = self.get(x1, y0);
        let v01 = self.get(x0, y1);
        let v11 = self.get(x1, y1);
        let a = v00 + (v10 - v00) * tx;
        let b = v01 + (v11 - v01) * tx;
        a + (b - a) * ty
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Quantizes to 8-bit values (used by the codec).
    pub fn to_u8(&self) -> Vec<u8> {
        self.data
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect()
    }

    /// Builds a frame from 8-bit values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_u8(width: u32, height: u32, data: &[u8]) -> Self {
        let floats = data.iter().map(|&b| b as f32 / 255.0).collect();
        Self::from_raw(width, height, floats)
    }

    /// Box-filter downsample by an integer factor (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0` or does not divide both dimensions.
    pub fn downsample(&self, factor: u32) -> LumaFrame {
        assert!(factor > 0, "downsample factor must be positive");
        assert!(
            self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor),
            "factor {factor} must divide {}x{}",
            self.width,
            self.height
        );
        let w = self.width / factor;
        let h = self.height / factor;
        let norm = 1.0 / (factor * factor) as f32;
        LumaFrame::from_fn(w, h, |x, y| {
            let mut sum = 0.0;
            for dy in 0..factor {
                for dx in 0..factor {
                    sum += self.get(x * factor + dx, y * factor + dy);
                }
            }
            sum * norm
        })
    }
}

impl fmt::Debug for LumaFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LumaFrame")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("mean", &self.mean())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let f = LumaFrame::new(4, 3);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.pixel_count(), 12);
        assert_eq!(f.mean(), 0.0);
    }

    #[test]
    fn set_get_roundtrip_and_clamp() {
        let mut f = LumaFrame::new(4, 4);
        f.set(1, 2, 0.5);
        assert_eq!(f.get(1, 2), 0.5);
        f.set(0, 0, 2.0);
        assert_eq!(f.get(0, 0), 1.0);
        f.set(3, 3, -1.0);
        assert_eq!(f.get(3, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let f = LumaFrame::new(4, 4);
        let _ = f.get(4, 0);
    }

    #[test]
    fn row_accessors_view_contiguous_rows() {
        let mut f = LumaFrame::from_fn(3, 2, |x, y| (y * 3 + x) as f32 / 10.0);
        assert_eq!(f.row(0), &[0.0, 0.1, 0.2]);
        assert_eq!(f.row(1), &[0.3, 0.4, 0.5]);
        f.row_mut(1).copy_from_slice(&[0.9, 0.8, 0.7]);
        assert_eq!(f.get(0, 1), 0.9);
        assert_eq!(f.row(1), &[0.9, 0.8, 0.7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let f = LumaFrame::new(4, 4);
        let _ = f.row(4);
    }

    #[test]
    fn from_fn_generates_gradient() {
        let f = LumaFrame::from_fn(10, 1, |x, _| x as f32 / 10.0);
        assert_eq!(f.get(0, 0), 0.0);
        assert!((f.get(9, 0) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn bilinear_interpolates() {
        let mut f = LumaFrame::new(2, 1);
        f.set(0, 0, 0.0);
        f.set(1, 0, 1.0);
        assert!((f.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        // Clamped outside.
        assert_eq!(f.sample_bilinear(-3.0, 0.0), 0.0);
        assert_eq!(f.sample_bilinear(5.0, 0.0), 1.0);
    }

    #[test]
    fn u8_roundtrip_is_close() {
        let f = LumaFrame::from_fn(16, 16, |x, y| ((x + y) as f32 / 32.0).min(1.0));
        let bytes = f.to_u8();
        let g = LumaFrame::from_u8(16, 16, &bytes);
        for (a, b) in f.data().iter().zip(g.data()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn downsample_averages() {
        let f = LumaFrame::from_fn(4, 4, |x, _| if x < 2 { 0.0 } else { 1.0 });
        let d = f.downsample(2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn downsample_requires_divisibility() {
        let _ = LumaFrame::new(5, 4).downsample(2);
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dimensions_rejected() {
        let _ = LumaFrame::new(0, 4);
    }

    #[test]
    fn from_raw_validates_length() {
        let f = LumaFrame::from_raw(2, 2, vec![0.0, 0.25, 0.5, 0.75]);
        assert_eq!(f.get(1, 1), 0.75);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn from_raw_wrong_length_panics() {
        let _ = LumaFrame::from_raw(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        let f = LumaFrame::new(2, 2);
        let s = format!("{f:?}");
        assert!(s.contains("LumaFrame"));
    }
}
