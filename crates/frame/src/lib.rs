//! # coterie-frame
//!
//! Frame buffers and image-quality metrics for the Coterie reproduction.
//!
//! The paper quantifies frame commonality with Structural Similarity
//! (SSIM, Wang et al. 2004), the de-facto perceptual similarity metric
//! adopted from Kahawai and Furion: "an SSIM value higher than 0.90
//! indicates that the distorted frame well approximates the original
//! high-quality frame" (§4.1). This crate provides:
//!
//! * [`LumaFrame`] — a single-channel floating-point image buffer used by
//!   the software renderer and codec,
//! * [`ssim`] — windowed SSIM with the standard 11×11 Gaussian weighting,
//! * [`stats`] — CDF and summary helpers used by every similarity
//!   experiment (Figures 1, 2, 5, 7).
//!
//! # Example
//!
//! ```
//! use coterie_frame::{LumaFrame, ssim};
//!
//! let a = LumaFrame::filled(64, 32, 0.5);
//! let mut b = a.clone();
//! b.set(3, 3, 0.9);
//! let s = ssim(&a, &a);
//! assert!((s - 1.0).abs() < 1e-9); // identical frames
//! assert!(ssim(&a, &b) < 1.0);     // perturbed frame
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image_io;
pub mod luma;
pub mod similarity;
pub mod stats;

pub use image_io::{read_pgm, save_pgm, write_pgm};
pub use luma::LumaFrame;
pub use similarity::{mse, psnr, ssim, ssim_map, ssim_with, ssim_with_simd, SsimOptions};
pub use stats::{Cdf, Summary};
