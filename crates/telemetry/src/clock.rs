//! Injected monotonic clocks.
//!
//! The recorder never reads `std::time` on its own: the caller injects
//! a [`TickClock`], so deterministic simulations can drive telemetry
//! with simulated milliseconds (byte-identical run to run) while live
//! tools may use [`WallClock`]. Only trace export ever consumes clock
//! readings; the deterministic summary is fed exclusively by the
//! timestamps the simulation passes explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic source of milliseconds.
pub trait TickClock: Send + Sync + std::fmt::Debug {
    /// Current time in milliseconds from an arbitrary fixed origin.
    fn now_ms(&self) -> f64;
}

/// A clock advanced explicitly by the caller — the deterministic
/// default. Stores the f64 tick as raw bits in an atomic so readers
/// never block writers.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the clock to `now_ms`. Callers are responsible for passing
    /// monotonically non-decreasing values.
    pub fn set_ms(&self, now_ms: f64) {
        self.bits.store(now_ms.to_bits(), Ordering::Relaxed);
    }
}

impl TickClock for ManualClock {
    fn now_ms(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Wall-clock time since the clock's creation. Never use this to feed
/// summaries that must be deterministic.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TickClock for WallClock {
    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_reports_what_was_set() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.set_ms(16.7);
        assert_eq!(c.now_ms(), 16.7);
        c.set_ms(33.4);
        assert_eq!(c.now_ms(), 33.4);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
