//! Log-bucketed latency histograms (HDR-style).
//!
//! Durations land in geometrically-growing buckets: 8 buckets per
//! doubling (growth factor 2^(1/8) ≈ 1.09), so any quantile estimate is
//! within ~9% of the true value while the whole histogram is a fixed
//! 256-slot array — mergeable across rooms and runs by adding counts.
//! The covered range is 1 µs to ~50 minutes, far beyond any per-frame
//! stage; values outside saturate into the edge buckets and the exact
//! `min`/`max` fields keep the tails honest.

/// Number of buckets. Fixed so merge is index-wise addition.
pub const BUCKETS: usize = 256;

/// Sub-bucket resolution: buckets per doubling of the value.
pub const BUCKETS_PER_DOUBLING: f64 = 8.0;

/// Lower bound of bucket 1, ms. Bucket 0 collects everything at or
/// below this (including the exact zeros that cache hits produce).
pub const MIN_TRACKED_MS: f64 = 1e-3;

/// A mergeable log-bucketed histogram of millisecond durations.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: f64::NEG_INFINITY,
        }
    }

    /// The bucket a value lands in.
    pub fn bucket_index(value_ms: f64) -> usize {
        if value_ms.is_nan() || value_ms <= MIN_TRACKED_MS {
            // NaN and everything ≤ 1 µs share the floor bucket.
            return 0;
        }
        let idx = 1.0 + ((value_ms / MIN_TRACKED_MS).log2() * BUCKETS_PER_DOUBLING).floor();
        idx.clamp(1.0, (BUCKETS - 1) as f64) as usize
    }

    /// Inclusive upper edge of a bucket, ms.
    pub fn bucket_upper_ms(index: usize) -> f64 {
        if index == 0 {
            return MIN_TRACKED_MS;
        }
        MIN_TRACKED_MS * (index as f64 / BUCKETS_PER_DOUBLING).exp2()
    }

    /// Exclusive lower edge of a bucket, ms (bucket 0 starts at 0).
    pub fn bucket_lower_ms(index: usize) -> f64 {
        if index == 0 {
            return 0.0;
        }
        Self::bucket_upper_ms(index - 1)
    }

    /// Records one duration. Non-finite values count into the floor
    /// bucket but are excluded from `sum`/`min`/`max` so aggregates
    /// stay finite.
    pub fn record(&mut self, value_ms: f64) {
        self.counts[Self::bucket_index(value_ms)] += 1;
        self.total += 1;
        if value_ms.is_finite() {
            self.sum_ms += value_ms;
            self.min_ms = self.min_ms.min(value_ms);
            self.max_ms = self.max_ms.max(value_ms);
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all finite recorded values, ms.
    pub fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// Smallest finite value recorded, ms (0.0 when empty).
    pub fn min_ms(&self) -> f64 {
        if self.min_ms.is_finite() {
            self.min_ms
        } else {
            0.0
        }
    }

    /// Largest finite value recorded, ms (0.0 when empty).
    pub fn max_ms(&self) -> f64 {
        if self.max_ms.is_finite() {
            self.max_ms
        } else {
            0.0
        }
    }

    /// Mean of all finite recorded values, ms (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ms / self.total as f64
        }
    }

    /// Raw bucket counts (index-aligned with the edge functions).
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper edge of
    /// the bucket holding the q-th sample, clamped into the observed
    /// `[min, max]` so estimates never exceed a real value's ~9% bucket
    /// error. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_ms(i).clamp(self.min_ms(), self.max_ms());
            }
        }
        self.max_ms()
    }

    /// Serializes the histogram into a compact JSON object with
    /// *sparse* bucket counts — `[[index, count], …]` pairs for the
    /// occupied buckets only — plus the exact aggregates and the bucket
    /// geometry constants, so a consumer can rebuild edges (via
    /// [`LogHistogram::bucket_upper_ms`]) and merge histograms across
    /// runs by adding counts index-wise. Deterministic for
    /// deterministic inputs.
    pub fn to_sparse_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"buckets\":{BUCKETS},\"buckets_per_doubling\":{BUCKETS_PER_DOUBLING},\
             \"min_tracked_ms\":{MIN_TRACKED_MS},\"count\":{},\"sum_ms\":{:.6},\
             \"min_ms\":{:.6},\"max_ms\":{:.6},\"sparse\":[",
            self.total,
            self.sum_ms,
            self.min_ms(),
            self.max_ms(),
        );
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{i},{c}]");
        }
        out.push_str("]}");
        out
    }

    /// Adds `other`'s samples into `self`. Counts are conserved
    /// exactly; `sum` merges by addition (floating-point, so merge
    /// order can shift the last bits of the mean but never the counts
    /// or quantile buckets).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ms += other.sum_ms;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn bucket_edges_bracket_values() {
        for v in [0.0, 1e-4, 0.01, 0.5, 2.5, 16.7, 100.0, 5000.0] {
            let i = LogHistogram::bucket_index(v);
            assert!(v <= LogHistogram::bucket_upper_ms(i) + 1e-12, "v={v} i={i}");
            assert!(v >= LogHistogram::bucket_lower_ms(i) - 1e-12, "v={v} i={i}");
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_growth_factor() {
        let mut h = LogHistogram::new();
        for i in 0..1000 {
            h.record(1.0 + i as f64 * 0.015); // 1.0 .. 16.0 ms
        }
        let p50 = h.quantile(0.5);
        let true_p50 = 1.0 + 499.0 * 0.015;
        assert!(
            (p50 / true_p50 - 1.0).abs() < 0.10,
            "p50 {p50:.3} vs {true_p50:.3}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 <= h.max_ms() && p99 >= p50);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(7.3);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.3);
        }
        assert_eq!(h.mean_ms(), 7.3);
    }

    #[test]
    fn zeros_land_in_floor_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(0.0);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_conserves_counts_and_extremes() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..50 {
            a.record(i as f64 * 0.3);
            b.record(100.0 + i as f64);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 100);
        assert_eq!(m.min_ms(), a.min_ms());
        assert_eq!(m.max_ms(), b.max_ms());
        let direct: u64 = m.counts().iter().sum();
        assert_eq!(direct, 100);
    }

    #[test]
    fn sparse_json_round_trips_counts() {
        let mut h = LogHistogram::new();
        for v in [0.0, 0.5, 0.5, 16.7, 16.7, 16.7, 200.0] {
            h.record(v);
        }
        let json = h.to_sparse_json();
        // Re-read via a dumb scan: every occupied bucket appears once
        // and the pair counts sum to the total.
        let sparse = json.split("\"sparse\":[").nth(1).unwrap();
        let mut seen = 0u64;
        for pair in sparse.trim_end_matches("]}").split("],[") {
            let pair = pair.trim_matches(|c| c == '[' || c == ']');
            let (idx, count) = pair.split_once(',').unwrap();
            let idx: usize = idx.parse().unwrap();
            let count: u64 = count.parse().unwrap();
            assert_eq!(h.counts()[idx], count);
            seen += count;
        }
        assert_eq!(seen, h.count());
        assert!(json.contains("\"count\":7"), "{json}");
    }

    #[test]
    fn non_finite_values_do_not_poison_aggregates() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 3);
        assert!(h.sum_ms().is_finite());
        assert_eq!(h.max_ms(), 2.0);
    }
}
