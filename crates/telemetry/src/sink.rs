//! The recording sink and its zero-cost disabled form.
//!
//! Instrumented code holds a [`TelemetrySink`] — a cloneable handle
//! that is either disabled (`None`, the default: every record call is
//! one branch on an always-taken fast path and compiles to nothing
//! measurable) or recording into a shared [`Recorder`]. The recorder
//! keeps span rings sharded per thread so the parallel render bands
//! and farm workers never contend on a single lock.

use crate::clock::{ManualClock, TickClock};
use crate::hist::LogHistogram;
use crate::ring::Ring;
use crate::summary::{FrameRecord, Stage, StageSummary, TelemetrySummary, VSYNC_BUDGET_MS};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a span is drawn in the trace: `pid` groups tracks into a
/// process lane (a room, the fleet, the kernel pool), `tid` is the
/// thread/track within it (a player, a render band, a worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId {
    /// Process lane.
    pub pid: u32,
    /// Track within the lane.
    pub tid: u32,
}

/// One completed span. `Copy` and `&'static str`-named so recording
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Trace lane.
    pub track: TrackId,
    /// Stage the time is charged to (becomes the trace category).
    pub stage: Stage,
    /// Human-readable span name.
    pub name: &'static str,
    /// Start, ms (simulated unless the instrumenter says otherwise).
    pub start_ms: f64,
    /// Duration, ms.
    pub dur_ms: f64,
    /// Frame number the span belongs to (0 when not frame-scoped).
    pub frame: u64,
}

/// One counter/gauge sample: the value of a named quantity at an
/// instant (store occupancy, egress-queue depth, live connections).
/// Exported as a Chrome-trace `ph:"C"` event, which renders as a
/// stepped area chart over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterEvent {
    /// Trace lane the counter chart lives in.
    pub track: TrackId,
    /// Counter name (one chart per name per lane).
    pub name: &'static str,
    /// Sample instant, ms.
    pub t_ms: f64,
    /// Sampled value.
    pub value: f64,
}

/// Capacities and budget for a recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Span ring capacity per shard.
    pub span_capacity: usize,
    /// Number of span ring shards (threads are spread across them).
    pub span_shards: usize,
    /// Frame-record ring capacity.
    pub frame_capacity: usize,
    /// Counter-sample ring capacity (counters are sampled at epoch /
    /// poll-loop granularity, so one shared ring suffices).
    pub counter_capacity: usize,
    /// Vsync budget frames are judged against, ms.
    pub budget_ms: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            span_capacity: 4096,
            span_shards: 8,
            frame_capacity: 16384,
            counter_capacity: 8192,
            budget_ms: VSYNC_BUDGET_MS,
        }
    }
}

/// Deterministic aggregates fed only by [`FrameRecord`]s.
#[derive(Debug)]
struct Aggregates {
    stages: [LogHistogram; 6],
    frame: LogHistogram,
    frames: u64,
    over_budget: u64,
    worst: Option<FrameRecord>,
}

impl Aggregates {
    fn new() -> Self {
        Aggregates {
            stages: std::array::from_fn(|_| LogHistogram::new()),
            frame: LogHistogram::new(),
            frames: 0,
            over_budget: 0,
            worst: None,
        }
    }
}

/// Shared recording state behind an enabled [`TelemetrySink`].
#[derive(Debug)]
pub struct Recorder {
    shards: Vec<Mutex<Ring<SpanEvent>>>,
    frames: Mutex<Ring<FrameRecord>>,
    counters: Mutex<Ring<CounterEvent>>,
    agg: Mutex<Aggregates>,
    clock: Arc<dyn TickClock>,
    manual: Option<Arc<ManualClock>>,
    budget_ms: f64,
}

/// Hands each thread a stable shard ticket on first use; the recorder
/// maps it onto its own shard count.
static NEXT_THREAD_TICKET: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_TICKET: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_ticket() -> usize {
    THREAD_TICKET.with(|t| {
        let mut ticket = t.get();
        if ticket == usize::MAX {
            ticket = NEXT_THREAD_TICKET.fetch_add(1, Ordering::Relaxed);
            t.set(ticket);
        }
        ticket
    })
}

impl Recorder {
    fn new(
        config: TelemetryConfig,
        clock: Arc<dyn TickClock>,
        manual: Option<Arc<ManualClock>>,
    ) -> Self {
        let shards = config.span_shards.max(1);
        Recorder {
            shards: (0..shards)
                .map(|_| Mutex::new(Ring::new(config.span_capacity.max(1))))
                .collect(),
            frames: Mutex::new(Ring::new(config.frame_capacity.max(1))),
            counters: Mutex::new(Ring::new(config.counter_capacity.max(1))),
            agg: Mutex::new(Aggregates::new()),
            clock,
            manual,
            budget_ms: config.budget_ms,
        }
    }

    fn record_span(&self, span: SpanEvent) {
        let shard = thread_ticket() % self.shards.len();
        self.shards[shard].lock().push(span);
    }

    fn record_frame(&self, rec: FrameRecord) {
        self.frames.lock().push(rec);
        let mut agg = self.agg.lock();
        for (i, &stage) in Stage::ATTRIBUTED.iter().enumerate() {
            agg.stages[i].record(rec.stage_ms(stage));
        }
        agg.frame.record(rec.attributed_ms());
        agg.frames += 1;
        if rec.over_budget(self.budget_ms) {
            agg.over_budget += 1;
        }
        let worse = match &agg.worst {
            Some(w) => rec.attributed_ms() > w.attributed_ms(),
            None => true,
        };
        if worse {
            agg.worst = Some(rec);
        }
    }
}

/// Cloneable telemetry handle: disabled by default, recording when
/// built with [`TelemetrySink::recording`].
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Recorder>>,
    /// Per-handle clock skew added to every recorded timestamp
    /// ([`TelemetrySink::with_record_offset`]). Models a worker process
    /// whose local clock runs ahead of the fleet epoch; 0 (the default)
    /// leaves every timestamp untouched, bit for bit.
    offset_ms: f64,
}

impl TelemetrySink {
    /// The no-op sink. All record methods are a single branch.
    pub fn disabled() -> Self {
        TelemetrySink {
            inner: None,
            offset_ms: 0.0,
        }
    }

    /// A recording sink driven by an internal [`ManualClock`] (advance
    /// it with [`TelemetrySink::set_time_ms`]).
    pub fn recording(config: TelemetryConfig) -> Self {
        let manual = Arc::new(ManualClock::new());
        TelemetrySink {
            inner: Some(Arc::new(Recorder::new(
                config,
                manual.clone(),
                Some(manual),
            ))),
            offset_ms: 0.0,
        }
    }

    /// A recording sink driven by a caller-injected clock.
    pub fn recording_with_clock(config: TelemetryConfig, clock: Arc<dyn TickClock>) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(Recorder::new(config, clock, None))),
            offset_ms: 0.0,
        }
    }

    /// A handle whose *recorded* timestamps are shifted by `offset_ms`
    /// (the clock skew of a simulated worker process). Only the record
    /// methods ([`TelemetrySink::span`] / [`TelemetrySink::frame`] /
    /// [`TelemetrySink::counter`]) apply the skew — `now_ms` and
    /// `set_time_ms` stay in caller time, so instrumented code that
    /// derives explicit timestamps from `now_ms` is skewed exactly
    /// once. Clones keep the handle's offset; a zero offset leaves
    /// every timestamp bit-identical to an unskewed sink.
    pub fn with_record_offset(mut self, offset_ms: f64) -> Self {
        self.offset_ms = offset_ms;
        self
    }

    /// The handle's record-time clock skew, ms.
    pub fn record_offset_ms(&self) -> f64 {
        self.offset_ms
    }

    /// Replays every retained span, frame record and counter sample of
    /// `other` into this sink with timestamps rebased by `-offset_ms`:
    /// the merge half of cross-process trace assembly. Each worker
    /// records on its own (skewed) clock; the coordinator absorbs every
    /// worker with that worker's known skew, and the merged trace sits
    /// on one shared epoch. Frame records re-aggregate, so the merged
    /// summary spans the whole fleet. No-op when either sink is
    /// disabled; absorbing a sink into itself is a caller error (the
    /// replay would double its events).
    pub fn absorb_rebased(&self, other: &TelemetrySink, offset_ms: f64) {
        if self.inner.is_none() || other.inner.is_none() {
            return;
        }
        for s in other.spans_snapshot() {
            self.span(
                s.track,
                s.stage,
                s.name,
                s.start_ms - offset_ms,
                s.dur_ms,
                s.frame,
            );
        }
        for mut f in other.frames_snapshot() {
            f.start_ms -= offset_ms;
            self.frame(f);
        }
        for c in other.counters_snapshot() {
            self.counter(c.track, c.name, c.t_ms - offset_ms, c.value);
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The injected clock's current time (0.0 when disabled).
    #[inline]
    pub fn now_ms(&self) -> f64 {
        match &self.inner {
            Some(r) => r.clock.now_ms(),
            None => 0.0,
        }
    }

    /// Advances the internal manual clock (no-op when disabled or when
    /// an external clock was injected).
    #[inline]
    pub fn set_time_ms(&self, now_ms: f64) {
        if let Some(r) = &self.inner {
            if let Some(m) = &r.manual {
                m.set_ms(now_ms);
            }
        }
    }

    /// The budget frames are judged against (the vsync default when
    /// disabled).
    #[inline]
    pub fn budget_ms(&self) -> f64 {
        match &self.inner {
            Some(r) => r.budget_ms,
            None => VSYNC_BUDGET_MS,
        }
    }

    /// Records a completed span.
    #[inline]
    pub fn span(
        &self,
        track: TrackId,
        stage: Stage,
        name: &'static str,
        start_ms: f64,
        dur_ms: f64,
        frame: u64,
    ) {
        if let Some(r) = &self.inner {
            // Branch rather than always adding: `x + 0.0` flips a
            // negative zero, and the zero-skew path must stay
            // bit-identical to a skew-less sink.
            let start_ms = if self.offset_ms != 0.0 {
                start_ms + self.offset_ms
            } else {
                start_ms
            };
            r.record_span(SpanEvent {
                track,
                stage,
                name,
                start_ms,
                dur_ms,
                frame,
            });
        }
    }

    /// Records one displayed frame's attribution.
    #[inline]
    pub fn frame(&self, mut rec: FrameRecord) {
        if let Some(r) = &self.inner {
            if self.offset_ms != 0.0 {
                rec.start_ms += self.offset_ms;
            }
            r.record_frame(rec);
        }
    }

    /// Records one counter/gauge sample ([`CounterEvent`]).
    #[inline]
    pub fn counter(&self, track: TrackId, name: &'static str, t_ms: f64, value: f64) {
        if let Some(r) = &self.inner {
            let t_ms = if self.offset_ms != 0.0 {
                t_ms + self.offset_ms
            } else {
                t_ms
            };
            r.counters.lock().push(CounterEvent {
                track,
                name,
                t_ms,
                value,
            });
        }
    }

    /// Deterministic run summary (`None` when disabled).
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let r = self.inner.as_ref()?;
        let agg = r.agg.lock();
        let mut spans_recorded = 0u64;
        let mut spans_dropped = 0u64;
        for shard in &r.shards {
            let s = shard.lock();
            spans_recorded += s.pushed();
            spans_dropped += s.dropped();
        }
        Some(TelemetrySummary {
            frames: agg.frames,
            over_budget: agg.over_budget,
            budget_ms: r.budget_ms,
            stages: std::array::from_fn(|i| StageSummary::from_hist(&agg.stages[i])),
            frame: StageSummary::from_hist(&agg.frame),
            stage_hists: agg.stages.clone(),
            frame_hist: agg.frame.clone(),
            worst: agg.worst,
            spans_recorded,
            spans_dropped,
        })
    }

    /// All retained counter samples, in deterministic order (sorted by
    /// time, then lane, then name). Empty when disabled.
    pub fn counters_snapshot(&self) -> Vec<CounterEvent> {
        let Some(r) = &self.inner else {
            return Vec::new();
        };
        let mut counters = r.counters.lock().snapshot();
        counters.sort_by(|a, b| {
            a.t_ms
                .total_cmp(&b.t_ms)
                .then(a.track.pid.cmp(&b.track.pid))
                .then(a.track.tid.cmp(&b.track.tid))
                .then(a.name.cmp(b.name))
                .then(a.value.total_cmp(&b.value))
        });
        counters
    }

    /// All retained spans across shards, in deterministic order
    /// (sorted by start time, then lane, then name) regardless of which
    /// thread recorded where. Empty when disabled.
    pub fn spans_snapshot(&self) -> Vec<SpanEvent> {
        let Some(r) = &self.inner else {
            return Vec::new();
        };
        let mut spans: Vec<SpanEvent> = Vec::new();
        for shard in &r.shards {
            spans.extend(shard.lock().snapshot());
        }
        spans.sort_by(|a, b| {
            a.start_ms
                .total_cmp(&b.start_ms)
                .then(a.track.pid.cmp(&b.track.pid))
                .then(a.track.tid.cmp(&b.track.tid))
                .then(a.frame.cmp(&b.frame))
                .then(a.name.cmp(b.name))
                .then(a.dur_ms.total_cmp(&b.dur_ms))
        });
        spans
    }

    /// All retained frame records, sorted by start time then identity.
    /// Empty when disabled.
    pub fn frames_snapshot(&self) -> Vec<FrameRecord> {
        let Some(r) = &self.inner else {
            return Vec::new();
        };
        let mut frames = r.frames.lock().snapshot();
        frames.sort_by(|a, b| {
            a.start_ms
                .total_cmp(&b.start_ms)
                .then(a.room.cmp(&b.room))
                .then(a.player.cmp(&b.player))
                .then(a.frame.cmp(&b.frame))
        });
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::AttributionModel;

    fn rec(frame: u64, decode_ms: f64) -> FrameRecord {
        FrameRecord {
            room: 0,
            player: 0,
            frame,
            start_ms: frame as f64 * 16.7,
            render_ms: 8.0,
            decode_ms,
            net_ms: 0.0,
            sync_ms: 2.5,
            cache_ms: 0.3,
            compose_ms: 2.0,
            critical_ms: 0.0,
            model: AttributionModel::Parallel,
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.span(
            TrackId { pid: 0, tid: 0 },
            Stage::Render,
            "band",
            0.0,
            1.0,
            0,
        );
        sink.frame(rec(0, 1.0));
        assert!(sink.summary().is_none());
        assert!(sink.spans_snapshot().is_empty());
        assert!(sink.frames_snapshot().is_empty());
        assert_eq!(sink.budget_ms(), VSYNC_BUDGET_MS);
    }

    #[test]
    fn recording_sink_aggregates_frames() {
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        sink.frame(rec(0, 10.0));
        sink.frame(rec(1, 20.0)); // 22 ms attributed: over budget
        let s = sink.summary().unwrap();
        assert_eq!(s.frames, 2);
        assert_eq!(s.over_budget, 1);
        assert_eq!(s.worst.unwrap().frame, 1);
        // stages[1] is decode in ATTRIBUTED order.
        assert!(s.stages[1].max_ms >= 20.0);
        assert!(s.frame.max_ms >= 22.0);
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let clone = sink.clone();
        clone.frame(rec(0, 1.0));
        assert_eq!(sink.summary().unwrap().frames, 1);
    }

    #[test]
    fn spans_snapshot_is_sorted_and_counts_drops() {
        let sink = TelemetrySink::recording(TelemetryConfig {
            span_capacity: 2,
            span_shards: 1,
            ..TelemetryConfig::default()
        });
        let t = TrackId { pid: 1, tid: 0 };
        sink.span(t, Stage::Render, "c", 3.0, 1.0, 0);
        sink.span(t, Stage::Render, "a", 1.0, 1.0, 0);
        sink.span(t, Stage::Render, "b", 2.0, 1.0, 0);
        let spans = sink.spans_snapshot();
        assert_eq!(spans.len(), 2, "capacity 2 keeps the newest two");
        assert!(spans.windows(2).all(|w| w[0].start_ms <= w[1].start_ms));
        let s = sink.summary().unwrap();
        assert_eq!(s.spans_recorded, 3);
        assert_eq!(s.spans_dropped, 1);
    }

    #[test]
    fn counters_snapshot_is_sorted_and_disabled_is_empty() {
        let disabled = TelemetrySink::disabled();
        disabled.counter(TrackId { pid: 0, tid: 0 }, "depth", 0.0, 1.0);
        assert!(disabled.counters_snapshot().is_empty());

        let sink = TelemetrySink::recording(TelemetryConfig::default());
        let t = TrackId {
            pid: 20_000,
            tid: 3,
        };
        sink.counter(t, "egress-queue", 5.0, 2.0);
        sink.counter(t, "egress-queue", 1.0, 7.0);
        sink.counter(t, "connections", 1.0, 4.0);
        let c = sink.counters_snapshot();
        assert_eq!(c.len(), 3);
        assert!(c.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
        assert_eq!(c[0].name, "connections"); // name breaks the t=1 tie
        assert_eq!(c[2].value, 2.0);
    }

    #[test]
    fn summary_carries_mergeable_histograms() {
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        sink.frame(rec(0, 10.0));
        sink.frame(rec(1, 20.0));
        let s = sink.summary().unwrap();
        assert_eq!(s.frame_hist.count(), 2);
        // stage_hists[1] is decode in ATTRIBUTED order.
        assert_eq!(s.stage_hists[1].count(), 2);
        assert_eq!(s.stage_hists[1].max_ms(), 20.0);
        let mut merged = s.frame_hist.clone();
        merged.merge(&s.frame_hist);
        assert_eq!(merged.count(), 4);
    }

    #[test]
    fn manual_clock_advances_via_sink() {
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        assert_eq!(sink.now_ms(), 0.0);
        sink.set_time_ms(500.0);
        assert_eq!(sink.now_ms(), 500.0);
    }

    #[test]
    fn record_offset_skews_only_recorded_timestamps() {
        let skewed = TelemetrySink::recording(TelemetryConfig::default()).with_record_offset(2.5);
        assert_eq!(skewed.record_offset_ms(), 2.5);
        skewed.set_time_ms(100.0);
        assert_eq!(skewed.now_ms(), 100.0, "clock stays in caller time");
        skewed.span(
            TrackId { pid: 0, tid: 0 },
            Stage::Render,
            "band",
            10.0,
            1.0,
            0,
        );
        skewed.frame(rec(0, 1.0));
        skewed.counter(TrackId { pid: 0, tid: 0 }, "depth", 10.0, 3.0);
        assert_eq!(skewed.spans_snapshot()[0].start_ms, 12.5);
        assert_eq!(skewed.frames_snapshot()[0].start_ms, 2.5);
        assert_eq!(skewed.counters_snapshot()[0].t_ms, 12.5);
        // Clones inherit the skew.
        let clone = skewed.clone();
        assert_eq!(clone.record_offset_ms(), 2.5);
    }

    #[test]
    fn absorb_rebased_merges_workers_onto_one_epoch() {
        // Worker records with +2.5 ms skew; the coordinator absorbs it
        // with that known skew and the merged events sit at true time.
        let primary = TelemetrySink::recording(TelemetryConfig::default());
        let worker = TelemetrySink::recording(TelemetryConfig::default()).with_record_offset(2.5);
        primary.span(
            TrackId { pid: 1, tid: 0 },
            Stage::Render,
            "local",
            5.0,
            1.0,
            0,
        );
        primary.frame(rec(0, 1.0));
        worker.span(
            TrackId { pid: 2, tid: 0 },
            Stage::Render,
            "remote",
            5.0,
            1.0,
            0,
        );
        worker.frame(rec(1, 1.0));
        worker.counter(TrackId { pid: 2, tid: 0 }, "depth", 7.0, 1.0);
        primary.absorb_rebased(&worker, worker.record_offset_ms());
        let spans = primary.spans_snapshot();
        assert_eq!(spans.len(), 2);
        // Both spans started at true t=5.0 despite the worker's skew.
        assert!(spans.iter().all(|s| s.start_ms == 5.0));
        let s = primary.summary().unwrap();
        assert_eq!(s.frames, 2, "absorbed frames re-aggregate");
        assert_eq!(primary.counters_snapshot()[0].t_ms, 7.0 + 2.5 - 2.5);
        // Disabled sinks are no-ops in either position.
        TelemetrySink::disabled().absorb_rebased(&primary, 0.0);
        primary.absorb_rebased(&TelemetrySink::disabled(), 0.0);
        assert_eq!(primary.summary().unwrap().frames, 2);
    }

    #[test]
    fn spans_from_many_threads_all_arrive() {
        let sink = TelemetrySink::recording(TelemetryConfig::default());
        std::thread::scope(|scope| {
            for tid in 0..4u32 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.span(
                            TrackId { pid: 0, tid },
                            Stage::Farm,
                            "job",
                            i as f64,
                            0.5,
                            i,
                        );
                    }
                });
            }
        });
        assert_eq!(sink.summary().unwrap().spans_recorded, 400);
        assert_eq!(sink.spans_snapshot().len(), 400);
    }
}
