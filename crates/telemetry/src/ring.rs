//! Fixed-capacity overwrite-oldest ring buffer.
//!
//! The hot path must never allocate or grow: a [`Ring`] is a
//! pre-allocated `Vec` written circularly. When full, the newest event
//! overwrites the oldest and a drop counter records the loss — recent
//! history is what an operator drills into; ancient spans age out.

/// A fixed-capacity ring of `Copy` items, oldest-overwritten-first.
#[derive(Debug, Clone)]
pub struct Ring<T: Copy> {
    slots: Vec<T>,
    capacity: usize,
    /// Index of the next write.
    head: usize,
    /// Items pushed over the ring's lifetime.
    pushed: u64,
}

impl<T: Copy> Ring<T> {
    /// A ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends an item, overwriting the oldest once full. Amortized
    /// O(1), and allocation-free after the ring first fills (the
    /// backing vector is pre-reserved, so even the filling pushes never
    /// reallocate).
    pub fn push(&mut self, item: T) {
        if self.slots.len() < self.capacity {
            self.slots.push(item);
        } else {
            self.slots[self.head] = item;
        }
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum items held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items pushed over the ring's lifetime (including overwritten).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Items lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.slots.len() as u64
    }

    /// The retained items, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        if self.slots.len() < self.capacity {
            return self.slots.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.snapshot(), vec![1, 2]);
        r.push(3);
        r.push(4); // overwrites 1
        assert_eq!(r.len(), 3);
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.pushed(), 4);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn snapshot_preserves_order_across_many_wraps() {
        let mut r = Ring::new(4);
        for i in 0..23 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![19, 20, 21, 22]);
        assert_eq!(r.dropped(), 19);
    }

    #[test]
    fn capacity_one_keeps_newest() {
        let mut r = Ring::new(1);
        r.push(7);
        r.push(8);
        assert_eq!(r.snapshot(), vec![8]);
    }

    #[test]
    fn no_reallocation_after_construction() {
        let mut r = Ring::new(8);
        let cap = r.slots.capacity();
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.slots.capacity(), cap, "ring must never reallocate");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u32>::new(0);
    }
}
