//! Chrome `trace_event` export and validation.
//!
//! [`chrome_trace_json`] serializes spans and frame records into the
//! Chrome trace-event JSON format (the `{"traceEvents": [...]}` object
//! form), loadable directly in `chrome://tracing` or Perfetto. Rooms
//! become process lanes, players and render bands become tracks, and
//! every frame event carries its full stage decomposition in `args` so
//! a selected slice shows exactly where the budget went.
//!
//! The workspace vendors no JSON library, so the writer emits JSON by
//! hand and [`parse_json`] is a small recursive-descent parser used by
//! [`validate_chrome_trace`] — the CI gate that re-parses an emitted
//! trace and checks each frame's stage decomposition re-combines to the
//! event's duration within 1%.

use crate::sink::{CounterEvent, SpanEvent};
use crate::summary::{FrameRecord, Stage};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Trace process lane for fleet-scope spans (epoch ticks, farm sweeps).
pub const FLEET_PID: u32 = 0;

/// Trace process lane for wall-clock kernel spans (render bands of
/// measurement passes), kept apart from the simulated-time lanes.
pub const KERNEL_PID: u32 = 10_000;

/// Trace process lane for the socket serving plane (`coterie-server`
/// accept/read/service/write spans and its gauges), wall-clock time.
pub const SERVE_PID: u32 = 20_000;

/// Base of the shard-worker process lanes: worker `w` of a sharded
/// fleet puts its worker-scope spans (room ticks, exchange work, store
/// gauges) on pid `SHARD_PID_BASE + w`. A merged multi-worker trace
/// then shows one `shard-w` lane per process next to the room lanes.
pub const SHARD_PID_BASE: u32 = 30_000;

/// Thread lane reserved for room-level service spans (store lookups,
/// prefetch admission) inside a room's process lane, above any player
/// track. Player tids must stay below this — [`player_tid`] checks.
pub const SERVICE_TID: u32 = 9_999;

/// Thread lane reserved for the pre-render farm's drain spans inside
/// the fleet process lane, above any room-tick track. Room tids must
/// stay below this — [`room_tid`] checks.
pub const FARM_TID: u32 = 10_000;

/// Whether `room` has a collision-free process lane: `room + 1` must
/// stay below [`KERNEL_PID`].
pub fn room_lane_valid(room: u32) -> bool {
    room + 1 < KERNEL_PID
}

/// Whether `player` has a collision-free thread lane below
/// [`SERVICE_TID`].
pub fn player_lane_valid(player: u32) -> bool {
    player < SERVICE_TID
}

/// Whether a room-tick track `room` stays below [`FARM_TID`].
pub fn room_tid_valid(room: u32) -> bool {
    room < FARM_TID
}

/// The trace lane a room's spans and frames live in.
///
/// Checked allocation: beyond ~10 000 rooms the lane would silently
/// collide with [`KERNEL_PID`]; debug builds catch that here instead
/// of producing a merged, unreadable trace.
pub fn room_pid(room: u32) -> u32 {
    debug_assert!(
        room_lane_valid(room),
        "room {room} collides with the kernel trace lane"
    );
    room + 1
}

/// The player's thread lane inside its room's process lane. Checked:
/// beyond ~9 000 players per room the lane would silently collide with
/// [`SERVICE_TID`].
pub fn player_tid(player: u32) -> u32 {
    debug_assert!(
        player_lane_valid(player),
        "player {player} collides with the room service trace lane"
    );
    player
}

/// A room's tick track inside the fleet process lane. Checked: beyond
/// ~10 000 rooms the track would silently collide with [`FARM_TID`].
pub fn room_tid(room: u32) -> u32 {
    debug_assert!(
        room_tid_valid(room),
        "room {room} collides with the farm trace lane"
    );
    room
}

/// The trace lane of shard worker `w`'s worker-scope spans.
pub fn shard_pid(worker: u32) -> u32 {
    SHARD_PID_BASE + worker
}

fn pid_name(pid: u32) -> String {
    match pid {
        FLEET_PID => "fleet".to_string(),
        KERNEL_PID => "kernels".to_string(),
        SERVE_PID => "serve".to_string(),
        p if p >= SHARD_PID_BASE => format!("shard-{}", p - SHARD_PID_BASE),
        p => format!("room-{}", p - 1),
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a finite JSON number with fixed sub-microsecond precision
/// (non-finite values, which a well-formed pipeline never produces,
/// serialize as 0 so the output always parses).
fn push_num(out: &mut String, v: f64) {
    let v = if v.is_finite() { v } else { 0.0 };
    let text = format!("{v:.4}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    out.push_str(if trimmed.is_empty() || trimmed == "-" {
        "0"
    } else {
        trimmed
    });
}

fn push_event_head(
    out: &mut String,
    name: &str,
    cat: &str,
    ts_ms: f64,
    dur_ms: f64,
    pid: u32,
    tid: u32,
) {
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, cat);
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    push_num(out, ts_ms * 1000.0);
    out.push_str(",\"dur\":");
    push_num(out, (dur_ms * 1000.0).max(0.0));
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid}");
}

/// Serializes spans and frames into Chrome trace-event JSON.
///
/// Frame events are `ph:"X"` slices named `frame` on
/// (`room_pid(room)`, player) tracks, with the full stage decomposition
/// in `args`; spans keep the lane their instrumenter chose. Metadata
/// events name every process lane so Perfetto shows `room-N` instead
/// of bare pids. Output is deterministic for deterministic inputs.
pub fn chrome_trace_json(spans: &[SpanEvent], frames: &[FrameRecord], budget_ms: f64) -> String {
    chrome_trace_json_full(spans, frames, &[], budget_ms)
}

/// [`chrome_trace_json`] plus counter/gauge samples: each
/// [`CounterEvent`] becomes a `ph:"C"` event, which trace viewers
/// render as a stepped area chart of the value over time (store
/// occupancy, egress-queue depth, live connections).
pub fn chrome_trace_json_full(
    spans: &[SpanEvent],
    frames: &[FrameRecord],
    counters: &[CounterEvent],
    budget_ms: f64,
) -> String {
    let mut pids: BTreeSet<u32> = BTreeSet::new();
    for s in spans {
        pids.insert(s.track.pid);
    }
    for f in frames {
        pids.insert(room_pid(f.room));
    }
    for c in counters {
        pids.insert(c.track.pid);
    }

    let mut out = String::with_capacity(256 * (spans.len() + frames.len()) + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    for pid in &pids {
        sep(&mut out);
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, &pid_name(*pid));
        out.push_str("\"}}");
    }

    for f in frames {
        sep(&mut out);
        push_event_head(
            &mut out,
            "frame",
            "frame",
            f.start_ms,
            f.attributed_ms(),
            room_pid(f.room),
            f.player,
        );
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"frame\":{},", f.frame);
        for stage in Stage::ATTRIBUTED {
            out.push('"');
            out.push_str(stage.name());
            out.push_str("_ms\":");
            push_num(&mut out, f.stage_ms(stage));
            out.push(',');
        }
        out.push_str("\"critical_ms\":");
        push_num(&mut out, f.critical_ms);
        out.push_str(",\"attributed_ms\":");
        push_num(&mut out, f.attributed_ms());
        let _ = write!(
            out,
            ",\"model\":\"{}\",\"dominant\":\"{}\",\"over_budget\":{}}}}}",
            f.model.name(),
            f.dominant().name(),
            f.over_budget(budget_ms),
        );
    }

    for s in spans {
        sep(&mut out);
        push_event_head(
            &mut out,
            s.name,
            s.stage.name(),
            s.start_ms,
            s.dur_ms,
            s.track.pid,
            s.track.tid,
        );
        let _ = write!(out, ",\"args\":{{\"frame\":{}}}}}", s.frame);
    }

    for c in counters {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, c.name);
        out.push_str("\",\"ph\":\"C\",\"ts\":");
        push_num(&mut out, c.t_ms * 1000.0);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", c.track.pid, c.track.tid);
        out.push_str(",\"args\":{\"value\":");
        push_num(&mut out, c.value);
        out.push_str("}}");
    }

    out.push_str("\n]}");
    out
}

/// A parsed JSON value (just enough JSON for trace validation — the
/// workspace vendors no JSON crate).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(_) => self.parse_number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are sound).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] verified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCheck {
    /// Total trace events (metadata included).
    pub events: usize,
    /// Frame slices checked.
    pub frames: usize,
    /// Counter (`ph:"C"`) samples checked.
    pub counters: usize,
    /// Worst relative error between a frame's `dur` and its stage
    /// decomposition re-combined under its model.
    pub max_rel_err: f64,
}

/// Parses an emitted trace and checks its structural invariants: the
/// document is valid JSON with a `traceEvents` array, every `ph:"X"`
/// slice has finite non-negative `ts`/`dur`, and every frame slice's
/// stage decomposition, re-combined under its declared attribution
/// model, matches the slice duration within 1% (the CI gate).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("trace has no traceEvents array")?;
    let mut frames = 0usize;
    let mut counters = 0usize;
    let mut max_rel_err = 0.0f64;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph == "C" {
            let ts = ev.get("ts").and_then(|v| v.as_f64());
            let value = ev
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_f64());
            let (Some(ts), Some(value)) = (ts, value) else {
                return Err(format!("event {i}: C sample without ts/args.value"));
            };
            if !ts.is_finite() || !value.is_finite() {
                return Err(format!("event {i}: non-finite counter sample"));
            }
            counters += 1;
            continue;
        }
        if ph != "X" {
            continue;
        }
        let ts = ev.get("ts").and_then(|v| v.as_f64());
        let dur = ev.get("dur").and_then(|v| v.as_f64());
        let (Some(ts), Some(dur)) = (ts, dur) else {
            return Err(format!("event {i}: X slice without ts/dur"));
        };
        if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
            return Err(format!("event {i}: non-finite or negative ts/dur"));
        }
        if ev.get("name").and_then(|v| v.as_str()) != Some("frame") {
            continue;
        }
        frames += 1;
        let args = ev
            .get("args")
            .ok_or(format!("event {i}: frame without args"))?;
        let stage = |key: &str| -> Result<f64, String> {
            args.get(key)
                .and_then(|v| v.as_f64())
                .ok_or(format!("event {i}: frame missing {key}"))
        };
        let render = stage("render_ms")?;
        let decode = stage("decode_ms")?;
        let net = stage("net_ms")?;
        let sync = stage("sync_ms")?;
        let cache = stage("cache_ms")?;
        let compose = stage("compose_ms")?;
        let model = args.get("model").and_then(|v| v.as_str()).unwrap_or("");
        let recombined = match model {
            "parallel" => render.max(decode).max(net).max(sync).max(cache) + compose,
            "sequential" => render + decode + net + sync + cache + compose,
            other => return Err(format!("event {i}: unknown model '{other}'")),
        };
        let dur_ms = dur / 1000.0;
        let rel = (recombined - dur_ms).abs() / dur_ms.max(1e-6);
        max_rel_err = max_rel_err.max(rel);
        if rel > 0.01 {
            return Err(format!(
                "event {i}: stage sum {recombined:.4} ms deviates {:.2}% from slice {dur_ms:.4} ms",
                rel * 100.0
            ));
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        frames,
        counters,
        max_rel_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TrackId;
    use crate::summary::AttributionModel;

    #[test]
    fn lane_allocator_boundaries_are_exact() {
        // Rooms: the last valid room pid sits directly under the
        // kernel lane; one past it would collide.
        assert!(room_lane_valid(KERNEL_PID - 2));
        assert_eq!(room_pid(KERNEL_PID - 2), KERNEL_PID - 1);
        assert!(!room_lane_valid(KERNEL_PID - 1));
        // Players: the last valid tid sits directly under SERVICE_TID.
        assert!(player_lane_valid(SERVICE_TID - 1));
        assert_eq!(player_tid(SERVICE_TID - 1), SERVICE_TID - 1);
        assert!(!player_lane_valid(SERVICE_TID));
        // Room-tick tracks: directly under FARM_TID.
        assert!(room_tid_valid(FARM_TID - 1));
        assert_eq!(room_tid(FARM_TID - 1), FARM_TID - 1);
        assert!(!room_tid_valid(FARM_TID));
    }

    #[test]
    #[should_panic(expected = "collides with the kernel trace lane")]
    #[cfg(debug_assertions)]
    fn room_lane_collision_is_caught_in_debug() {
        let _ = room_pid(KERNEL_PID - 1);
    }

    #[test]
    #[should_panic(expected = "collides with the room service trace lane")]
    #[cfg(debug_assertions)]
    fn player_lane_collision_is_caught_in_debug() {
        let _ = player_tid(SERVICE_TID);
    }

    fn frame(room: u32, n: u64) -> FrameRecord {
        FrameRecord {
            room,
            player: 0,
            frame: n,
            start_ms: n as f64 * 16.7,
            render_ms: 9.0,
            decode_ms: 11.0,
            net_ms: 0.0,
            sync_ms: 2.5,
            cache_ms: 0.3,
            compose_ms: 2.0,
            critical_ms: 13.0,
            model: AttributionModel::Parallel,
        }
    }

    #[test]
    fn emitted_trace_parses_and_validates() {
        let spans = vec![SpanEvent {
            track: TrackId { pid: 1, tid: 7 },
            stage: Stage::Render,
            name: "band",
            start_ms: 0.5,
            dur_ms: 3.25,
            frame: 1,
        }];
        let frames = vec![frame(0, 1), frame(1, 2)];
        let json = chrome_trace_json(&spans, &frames, 16.7);
        let check = validate_chrome_trace(&json).expect("trace must validate");
        assert_eq!(check.frames, 2);
        // 3 process_name metadata (room-0, room-1, span pid 1=room-0
        // already counted) + 2 frames + 1 span.
        assert!(check.events >= 5, "events {}", check.events);
        assert!(check.max_rel_err < 0.01);
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("room-0"));
    }

    #[test]
    fn counter_events_export_and_validate() {
        let counters = vec![
            CounterEvent {
                track: TrackId {
                    pid: SERVE_PID,
                    tid: 0,
                },
                name: "egress-queue-bytes",
                t_ms: 1.0,
                value: 4096.0,
            },
            CounterEvent {
                track: TrackId {
                    pid: SERVE_PID,
                    tid: 0,
                },
                name: "connections",
                t_ms: 2.5,
                value: 3.0,
            },
        ];
        let json = chrome_trace_json_full(&[], &[frame(0, 1)], &counters, 16.7);
        let check = validate_chrome_trace(&json).expect("trace with counters must validate");
        assert_eq!(check.counters, 2);
        assert_eq!(check.frames, 1);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("serve"), "serve lane must be named");
    }

    #[test]
    fn non_finite_counter_fails_validation() {
        let c = CounterEvent {
            track: TrackId { pid: 0, tid: 0 },
            name: "depth",
            t_ms: 0.0,
            value: 1.0,
        };
        let json = chrome_trace_json_full(&[], &[], &[c], 16.7);
        let broken = json.replace("\"value\":1", "\"value\":\"oops\"");
        assert_ne!(json, broken);
        assert!(validate_chrome_trace(&broken).is_err());
    }

    #[test]
    fn trace_output_is_deterministic() {
        let frames = vec![frame(0, 1), frame(0, 2)];
        let a = chrome_trace_json(&[], &frames, 16.7);
        let b = chrome_trace_json(&[], &frames, 16.7);
        assert_eq!(a, b);
    }

    #[test]
    fn tampered_stage_sum_fails_validation() {
        let frames = vec![frame(0, 1)];
        let json = chrome_trace_json(&[], &frames, 16.7);
        // Inflate one stage so the decomposition no longer matches.
        let broken = json.replace("\"decode_ms\":11,", "\"decode_ms\":99,");
        assert_ne!(json, broken, "replacement must hit");
        assert!(validate_chrome_trace(&broken).is_err());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = parse_json(r#"{"a": [1, -2.5e1, true, null, "x\n\"yA"], "b": {"c": 3}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(3.0));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[4].as_str(), Some("x\n\"yA"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn sequential_frames_validate_as_sums() {
        let mut f = frame(0, 1);
        f.model = AttributionModel::Sequential;
        let json = chrome_trace_json(&[], &[f], 16.7);
        let check = validate_chrome_trace(&json).unwrap();
        assert_eq!(check.frames, 1);
    }

    #[test]
    fn non_finite_numbers_never_reach_the_output() {
        let mut f = frame(0, 1);
        f.critical_ms = f64::NAN;
        let json = chrome_trace_json(&[], &[f], 16.7);
        assert!(validate_chrome_trace(&json).is_ok());
        assert!(!json.contains("NaN"));
    }
}
