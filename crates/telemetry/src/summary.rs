//! Budget attribution: per-frame stage decomposition and summaries.
//!
//! Eq. 2 of the paper says a frame's interval is
//! `max(T_render, T_decode, T_prefetch, T_sync) + T_merge` — the tasks
//! run concurrently and the slowest one owns the frame. A
//! [`FrameRecord`] captures each task's cost for one displayed frame;
//! [`AttributionModel`] says how they combine (parallel for
//! Coterie/Multi-Furion/Mobile, sequential for the thin client's
//! render→transmit→decode pipeline). Frames whose attributed time
//! exceeds the 16.7 ms vsync budget are flagged with the dominating
//! stage named, which is precisely the question aggregates cannot
//! answer: *which stage* of *which frame* blew the budget.

use crate::hist::LogHistogram;
use std::fmt;

/// The vsync frame budget the paper's constraint 1 targets, ms (60 Hz).
pub const VSYNC_BUDGET_MS: f64 = 16.7;

/// A pipeline stage a span or frame component is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// FI + near-BE (or full-scene) rendering.
    Render,
    /// Codec encode (server side).
    Encode,
    /// Codec decode (client side).
    Decode,
    /// Network transfer, including retries and backoff waits.
    Net,
    /// FI state synchronization.
    Sync,
    /// Frame-cache / store lookup.
    CacheLookup,
    /// Merge/compose of FI over the BE panorama.
    Compose,
    /// A whole session or room tick.
    Tick,
    /// Pre-render farm work.
    Farm,
    /// Shared frame-store operations.
    Store,
}

impl Stage {
    /// The six stages a [`FrameRecord`] attributes time to, in display
    /// order. `Encode` is charged to the server GPU (it happens before
    /// the transfer the client waits on), so client-side attribution
    /// folds it into `Net`; `Tick`/`Farm`/`Store` are span-only.
    pub const ATTRIBUTED: [Stage; 6] = [
        Stage::Render,
        Stage::Decode,
        Stage::Net,
        Stage::Sync,
        Stage::CacheLookup,
        Stage::Compose,
    ];

    /// Stable lowercase name (used as the trace category).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Render => "render",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::Net => "net",
            Stage::Sync => "sync",
            Stage::CacheLookup => "cache",
            Stage::Compose => "compose",
            Stage::Tick => "tick",
            Stage::Farm => "farm",
            Stage::Store => "store",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a frame's stage costs combine into its display interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributionModel {
    /// Stages run concurrently; the slowest owns the frame and compose
    /// runs after (Eq. 2 — Mobile, Multi-Furion, Coterie).
    Parallel,
    /// Stages run back to back (thin client: server render, then
    /// transmit, then decode).
    Sequential,
}

impl AttributionModel {
    /// Stable lowercase name for trace args.
    pub fn name(self) -> &'static str {
        match self {
            AttributionModel::Parallel => "parallel",
            AttributionModel::Sequential => "sequential",
        }
    }
}

/// One displayed frame, decomposed into stage costs (all ms, simulated
/// time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Room (fleet) or 0 for standalone sessions.
    pub room: u32,
    /// Player index within the room.
    pub player: u32,
    /// Frame number within the session.
    pub frame: u64,
    /// Interval start, simulated ms.
    pub start_ms: f64,
    /// Local rendering (FI + near BE, or everything for Mobile).
    pub render_ms: f64,
    /// Far-BE / streamed-frame decode.
    pub decode_ms: f64,
    /// Network transfer latency the client waited on (retries and
    /// backoff included).
    pub net_ms: f64,
    /// FI synchronization.
    pub sync_ms: f64,
    /// Frame-cache lookup.
    pub cache_ms: f64,
    /// FI-over-BE merge/compose.
    pub compose_ms: f64,
    /// The simulation's own critical-path time for the interval
    /// (ground truth the attribution is validated against).
    pub critical_ms: f64,
    /// How the stages combine.
    pub model: AttributionModel,
}

impl FrameRecord {
    /// The cost attributed to one stage.
    pub fn stage_ms(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Render => self.render_ms,
            Stage::Decode => self.decode_ms,
            Stage::Net => self.net_ms,
            Stage::Sync => self.sync_ms,
            Stage::CacheLookup => self.cache_ms,
            Stage::Compose => self.compose_ms,
            _ => 0.0,
        }
    }

    /// The frame's interval as reconstructed from its stages under the
    /// attribution model. Matches `critical_ms` when the decomposition
    /// is complete.
    pub fn attributed_ms(&self) -> f64 {
        match self.model {
            AttributionModel::Parallel => {
                self.render_ms
                    .max(self.decode_ms)
                    .max(self.net_ms)
                    .max(self.sync_ms)
                    .max(self.cache_ms)
                    + self.compose_ms
            }
            AttributionModel::Sequential => {
                self.render_ms
                    + self.decode_ms
                    + self.net_ms
                    + self.sync_ms
                    + self.cache_ms
                    + self.compose_ms
            }
        }
    }

    /// The stage contributing the most time (ties break toward the
    /// earlier stage in [`Stage::ATTRIBUTED`] order).
    pub fn dominant(&self) -> Stage {
        let mut best = Stage::ATTRIBUTED[0];
        let mut best_ms = self.stage_ms(best);
        for &s in &Stage::ATTRIBUTED[1..] {
            let ms = self.stage_ms(s);
            if ms > best_ms {
                best = s;
                best_ms = ms;
            }
        }
        best
    }

    /// Whether the frame blew the budget.
    pub fn over_budget(&self, budget_ms: f64) -> bool {
        self.attributed_ms() > budget_ms
    }
}

/// Quantiles of one stage's per-frame cost across a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageSummary {
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Worst observed, ms.
    pub max_ms: f64,
}

impl StageSummary {
    /// Summarizes a histogram (all zeros when empty — the documented
    /// sentinel for runs that displayed no frames).
    pub fn from_hist(h: &LogHistogram) -> Self {
        StageSummary {
            p50_ms: h.quantile(0.50),
            p95_ms: h.quantile(0.95),
            p99_ms: h.quantile(0.99),
            max_ms: h.max_ms(),
        }
    }
}

/// The compact run summary merged into `FleetMetrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Frames attributed.
    pub frames: u64,
    /// Frames whose attributed time exceeded the budget.
    pub over_budget: u64,
    /// The budget used, ms.
    pub budget_ms: f64,
    /// Per-stage quantiles, aligned with [`Stage::ATTRIBUTED`].
    pub stages: [StageSummary; 6],
    /// Quantiles of whole-frame attributed time.
    pub frame: StageSummary,
    /// Full per-stage histograms (same alignment as `stages`). Bucket
    /// counts are mergeable across runs, so persisting these — not just
    /// the quantiles — lets later tooling recompute any percentile over
    /// combined runs.
    pub stage_hists: [LogHistogram; 6],
    /// Full histogram of whole-frame attributed time.
    pub frame_hist: LogHistogram,
    /// The worst frame observed (by attributed time), for drill-down.
    pub worst: Option<FrameRecord>,
    /// Span events recorded across all ring shards.
    pub spans_recorded: u64,
    /// Span events lost to ring overwrites.
    pub spans_dropped: u64,
}

impl TelemetrySummary {
    /// Fraction of frames over budget (0.0 when no frames).
    pub fn over_budget_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.over_budget as f64 / self.frames as f64
        }
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry: {} frames, {} over {:.1} ms budget ({:.2}%), spans {} ({} dropped)",
            self.frames,
            self.over_budget,
            self.budget_ms,
            self.over_budget_ratio() * 100.0,
            self.spans_recorded,
            self.spans_dropped,
        )?;
        writeln!(
            f,
            "  {:<8} {:>8} {:>8} {:>8} {:>8}",
            "stage", "p50", "p95", "p99", "max"
        )?;
        for (stage, s) in Stage::ATTRIBUTED.iter().zip(self.stages.iter()) {
            writeln!(
                f,
                "  {:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                stage.name(),
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.max_ms
            )?;
        }
        writeln!(
            f,
            "  {:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            "frame", self.frame.p50_ms, self.frame.p95_ms, self.frame.p99_ms, self.frame.max_ms
        )?;
        match &self.worst {
            Some(w) => write!(
                f,
                "  worst: frame {} room {} player {} at {:.1} ms — {:.2} ms, dominated by {} ({:.2} ms)",
                w.frame,
                w.room,
                w.player,
                w.start_ms,
                w.attributed_ms(),
                w.dominant(),
                w.stage_ms(w.dominant()),
            ),
            None => write!(f, "  worst: none (no frames displayed)"),
        }
    }
}

/// Per-room frame accounting, small enough to ride in a `RoomReport`.
/// Accumulated by the session itself (not snapshotted from rings), so
/// it is exact regardless of ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameStats {
    /// Frames attributed.
    pub frames: u64,
    /// Frames over budget.
    pub over_budget: u64,
    /// Worst frame observed, by attributed time.
    pub worst: Option<FrameRecord>,
}

impl FrameStats {
    /// Folds one frame in.
    pub fn record(&mut self, rec: &FrameRecord, budget_ms: f64) {
        self.frames += 1;
        if rec.over_budget(budget_ms) {
            self.over_budget += 1;
        }
        let worse = match &self.worst {
            Some(w) => rec.attributed_ms() > w.attributed_ms(),
            None => true,
        };
        if worse {
            self.worst = Some(*rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(model: AttributionModel) -> FrameRecord {
        FrameRecord {
            room: 1,
            player: 2,
            frame: 42,
            start_ms: 700.0,
            render_ms: 9.0,
            decode_ms: 11.0,
            net_ms: 4.0,
            sync_ms: 2.5,
            cache_ms: 0.3,
            compose_ms: 2.0,
            critical_ms: 13.0,
            model,
        }
    }

    #[test]
    fn parallel_attribution_is_max_plus_compose() {
        let r = rec(AttributionModel::Parallel);
        assert!((r.attributed_ms() - 13.0).abs() < 1e-12);
        assert_eq!(r.dominant(), Stage::Decode);
        assert!(!r.over_budget(VSYNC_BUDGET_MS));
    }

    #[test]
    fn sequential_attribution_is_sum() {
        let r = rec(AttributionModel::Sequential);
        assert!((r.attributed_ms() - 28.8).abs() < 1e-12);
        assert!(r.over_budget(VSYNC_BUDGET_MS));
    }

    #[test]
    fn dominant_breaks_ties_toward_earlier_stage() {
        let mut r = rec(AttributionModel::Parallel);
        r.render_ms = 11.0; // equal to decode
        assert_eq!(r.dominant(), Stage::Render);
    }

    #[test]
    fn frame_stats_track_worst_and_over_budget() {
        let mut stats = FrameStats::default();
        let mut a = rec(AttributionModel::Parallel);
        stats.record(&a, VSYNC_BUDGET_MS);
        a.decode_ms = 20.0;
        a.frame = 43;
        stats.record(&a, VSYNC_BUDGET_MS);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.over_budget, 1);
        assert_eq!(stats.worst.unwrap().frame, 43);
    }

    #[test]
    fn summary_display_names_dominating_stage() {
        let summary = TelemetrySummary {
            frames: 10,
            over_budget: 1,
            budget_ms: VSYNC_BUDGET_MS,
            stages: [StageSummary::default(); 6],
            frame: StageSummary::default(),
            stage_hists: std::array::from_fn(|_| LogHistogram::new()),
            frame_hist: LogHistogram::new(),
            worst: Some(rec(AttributionModel::Parallel)),
            spans_recorded: 5,
            spans_dropped: 0,
        };
        let text = summary.to_string();
        assert!(text.contains("10 frames"), "{text}");
        assert!(text.contains("dominated by decode"), "{text}");
        assert!(text.contains("render"), "{text}");
    }

    #[test]
    fn empty_summary_has_finite_sentinels() {
        let summary = TelemetrySummary {
            frames: 0,
            over_budget: 0,
            budget_ms: VSYNC_BUDGET_MS,
            stages: [StageSummary::default(); 6],
            frame: StageSummary::default(),
            stage_hists: std::array::from_fn(|_| LogHistogram::new()),
            frame_hist: LogHistogram::new(),
            worst: None,
            spans_recorded: 0,
            spans_dropped: 0,
        };
        assert_eq!(summary.over_budget_ratio(), 0.0);
        assert!(summary.to_string().contains("no frames displayed"));
    }
}
