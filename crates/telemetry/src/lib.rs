//! # coterie-telemetry
//!
//! Low-overhead observability for the Coterie pipeline.
//!
//! Coterie's whole argument is a per-frame time budget: constraint 1
//! (§4) demands that FI plus near-BE rendering finish inside the
//! 16.7 ms vsync interval, and Eq. 2 names the tasks competing for it.
//! End-of-run aggregates cannot say *which stage* of *which frame* blew
//! that budget; this crate can. It provides three layers:
//!
//! * **Spans** — fixed-capacity ring buffers of `Copy` events
//!   ([`SpanEvent`]), sharded across threads so the render band workers
//!   never contend on one lock. Recording a span is a shard pick, a
//!   mutex lock of an uncontended shard, and two array writes — no
//!   allocation on the hot path.
//! * **Budget attribution** — one [`FrameRecord`] per displayed frame,
//!   decomposing it into render / decode / net (incl. retries and
//!   backoff waits) / FI-sync / cache-lookup / compose stages under the
//!   system's [`AttributionModel`], and flagging frames whose
//!   attributed time exceeds the vsync budget with the dominating stage
//!   named. Per-stage [`LogHistogram`]s (log-bucketed, HDR-style,
//!   mergeable) feed the p50/p95/p99 summary.
//! * **Export** — Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` / Perfetto ([`chrome_trace_json`]) plus a
//!   compact [`TelemetrySummary`] merged into fleet reports.
//!
//! Everything hangs off a [`TelemetrySink`] handle. A disabled sink is
//! a `None` behind `#[inline]` methods: every record call is a single
//! branch, so instrumented code costs nothing measurable when telemetry
//! is off (the `telemetry_noop_overhead` bench in `coterie-bench`
//! guards this).
//!
//! Determinism: the simulation drives all [`FrameRecord`]s with
//! *simulated* timestamps, so summaries are reproducible run-to-run.
//! Wall-clock spans (if any) only ever feed the trace export, never the
//! deterministic summary. The clock is injected ([`TickClock`]) rather
//! than read from `std::time` internally.
//!
//! # Example
//!
//! ```
//! use coterie_telemetry::{
//!     AttributionModel, FrameRecord, Stage, TelemetryConfig, TelemetrySink, TrackId,
//! };
//!
//! let sink = TelemetrySink::recording(TelemetryConfig::default());
//! sink.span(TrackId { pid: 1, tid: 0 }, Stage::Render, "band", 0.0, 3.2, 1);
//! sink.frame(FrameRecord {
//!     room: 0,
//!     player: 0,
//!     frame: 1,
//!     start_ms: 0.0,
//!     render_ms: 9.0,
//!     decode_ms: 11.0,
//!     net_ms: 0.0,
//!     sync_ms: 2.5,
//!     cache_ms: 0.3,
//!     compose_ms: 2.0,
//!     critical_ms: 13.0,
//!     model: AttributionModel::Parallel,
//! });
//! let summary = sink.summary().unwrap();
//! assert_eq!(summary.frames, 1);
//! assert_eq!(summary.over_budget, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod ring;
pub mod sink;
pub mod summary;
pub mod trace;

pub use clock::{ManualClock, TickClock, WallClock};
pub use hist::LogHistogram;
pub use ring::Ring;
pub use sink::{CounterEvent, Recorder, SpanEvent, TelemetryConfig, TelemetrySink, TrackId};
pub use summary::{
    AttributionModel, FrameRecord, FrameStats, Stage, StageSummary, TelemetrySummary,
    VSYNC_BUDGET_MS,
};
pub use trace::{
    chrome_trace_json, chrome_trace_json_full, parse_json, player_lane_valid, player_tid,
    room_lane_valid, room_pid, room_tid, room_tid_valid, shard_pid, validate_chrome_trace,
    JsonValue, TraceCheck, FARM_TID, FLEET_PID, KERNEL_PID, SERVE_PID, SERVICE_TID, SHARD_PID_BASE,
};
