//! Property-based tests for the telemetry histograms.
//!
//! The fleet merges per-room histograms into one summary, so merge must
//! behave like multiset union: commutative, associative, count
//! conserving. Quantile estimates must stay inside the bucket that
//! holds the sample they name.

use coterie_telemetry::LogHistogram;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..2000.0, 0..200)
}

fn hist_of(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        // Counts, extremes and every bucket agree exactly; sums agree
        // up to float addition order.
        prop_assert_eq!(ab.counts(), ba.counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min_ms(), ba.min_ms());
        prop_assert_eq!(ab.max_ms(), ba.max_ms());
        prop_assert!((ab.sum_ms() - ba.sum_ms()).abs() <= 1e-9 * (1.0 + ab.sum_ms().abs()));
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.counts(), right.counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min_ms(), right.min_ms());
        prop_assert_eq!(left.max_ms(), right.max_ms());
    }

    #[test]
    fn merge_conserves_counts(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut m = ha.clone();
        m.merge(&hb);
        prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
        let bucket_total: u64 = m.counts().iter().sum();
        prop_assert_eq!(bucket_total, m.count());
        // Merging with an empty histogram is the identity.
        let mut id = ha.clone();
        id.merge(&LogHistogram::new());
        prop_assert_eq!(&id, &ha);
    }

    #[test]
    fn quantiles_stay_inside_bucket_edges(a in samples(), q in 0.0f64..=1.0) {
        let h = hist_of(&a);
        let est = h.quantile(q);
        if a.is_empty() {
            prop_assert_eq!(est, 0.0);
        } else {
            // The estimate is clamped into the observed range...
            prop_assert!(est >= h.min_ms() - 1e-12);
            prop_assert!(est <= h.max_ms() + 1e-12);
            // ...and equals some bucket's upper edge (or a clamped
            // extreme), so it can overestimate the true quantile by at
            // most one bucket's width (~9%).
            let i = LogHistogram::bucket_index(est);
            prop_assert!(est <= LogHistogram::bucket_upper_ms(i) + 1e-12);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(a in samples()) {
        let h = hist_of(&a);
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]) + 1e-12);
        }
    }

    #[test]
    fn every_sample_lands_in_its_bracketing_bucket(v in 0.0f64..1e6) {
        let i = LogHistogram::bucket_index(v);
        prop_assert!(v >= LogHistogram::bucket_lower_ms(i) - 1e-12);
        // The overflow bucket has no finite upper bound by design.
        if i < coterie_telemetry::hist::BUCKETS - 1 {
            prop_assert!(v <= LogHistogram::bucket_upper_ms(i) + 1e-12);
        }
    }
}
