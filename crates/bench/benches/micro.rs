//! Criterion micro-benchmarks for the performance-critical substrates:
//! SSIM, the codec, the panoramic renderer, frame-cache operations and
//! the cutoff solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use coterie_codec::{Encoder, Quality};
use coterie_core::cutoff::{max_cutoff_radius, CutoffConfig};
use coterie_core::{CacheConfig, CacheQuery, CacheVersion, FrameCache, FrameMeta, FrameSource};
use coterie_device::DeviceProfile;
use coterie_frame::{ssim, ssim_with_simd, LumaFrame, SsimOptions};
use coterie_parallel::simd;
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_serve::{SharedFrameStore, StoreConfig};
use coterie_telemetry::{Stage, TelemetryConfig, TelemetrySink, TrackId};
use coterie_world::{GameId, GameSpec, GridPoint, LeafId, Vec2};

fn bench_ssim(c: &mut Criterion) {
    let a = LumaFrame::from_fn(192, 96, |x, y| ((x * 7 + y * 13) % 97) as f32 / 96.0);
    let mut b = a.clone();
    b.set(50, 50, 1.0);
    c.bench_function("ssim_192x96", |bench| {
        bench.iter(|| ssim(black_box(&a), black_box(&b)))
    });
    // Default options at the renderer's default resolution — the exact
    // configuration the simulator's similarity sweeps run, and the one
    // BENCH_render.json tracks.
    let a = LumaFrame::from_fn(256, 128, |x, y| ((x * 7 + y * 13) % 97) as f32 / 96.0);
    let mut b = a.clone();
    b.set(70, 70, 1.0);
    c.bench_function("ssim_default_256x128", |bench| {
        bench.iter(|| ssim(black_box(&a), black_box(&b)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let frame = LumaFrame::from_fn(192, 96, |x, y| ((x * 3 + y * 5) % 31) as f32 / 30.0);
    let enc = Encoder::new(Quality::CRF25);
    let encoded = enc.encode(&frame);
    c.bench_function("codec_encode_192x96", |bench| {
        bench.iter(|| enc.encode(black_box(&frame)))
    });
    c.bench_function("codec_decode_192x96", |bench| {
        bench.iter(|| enc.decode(black_box(&encoded)).expect("decodes"))
    });
}

fn bench_render(c: &mut Criterion) {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(7);
    let renderer = Renderer::new(RenderOptions::fast());
    let eye = scene.eye(scene.bounds().center());
    c.bench_function("render_whole_pano", |bench| {
        bench.iter(|| renderer.render_panorama(black_box(&scene), eye, RenderFilter::All))
    });
    c.bench_function("render_far_pano", |bench| {
        bench.iter(|| {
            renderer.render_panorama(
                black_box(&scene),
                eye,
                RenderFilter::FarOnly { cutoff: 8.0 },
            )
        })
    });
    // Per-filter benches at the default 256x128 resolution — the hot-path
    // configuration the experiments and BENCH_render.json measure.
    let renderer = Renderer::new(RenderOptions::default());
    let cutoff = 10.0;
    c.bench_function("render_all_256x128", |bench| {
        bench.iter(|| renderer.render_panorama(black_box(&scene), eye, RenderFilter::All))
    });
    c.bench_function("render_near_256x128", |bench| {
        bench.iter(|| {
            renderer.render_panorama(black_box(&scene), eye, RenderFilter::NearOnly { cutoff })
        })
    });
    c.bench_function("render_far_256x128", |bench| {
        bench.iter(|| {
            renderer.render_panorama(black_box(&scene), eye, RenderFilter::FarOnly { cutoff })
        })
    });
}

fn bench_simd_levels(c: &mut Criterion) {
    // Every hot kernel at every dispatch level the CPU supports; the
    // scalar entries double as the pre-SIMD baselines since the kernels
    // are bit-identical across levels.
    let frame = LumaFrame::from_fn(256, 128, |x, y| ((x * 7 + y * 13) % 97) as f32 / 96.0);
    let mut other = frame.clone();
    other.set(70, 70, 1.0);
    let opts = SsimOptions::default();
    let dct = simd::Dct8x8::new();
    let mut block = [0.0f32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i * 7919) % 100) as f32 / 100.0 - 0.5;
    }
    let mut coeffs = [0.0f32; 64];
    dct.forward(&block, &mut coeffs, simd::SimdLevel::Scalar);
    let qtable: [f32; 64] = std::array::from_fn(|i| 1.0 + (i as f32) * 0.25);
    for level in simd::available_levels() {
        let name = level.name();
        c.bench_function(&format!("ssim_default_256x128/{name}"), |bench| {
            bench.iter(|| ssim_with_simd(black_box(&frame), black_box(&other), &opts, level))
        });
        let enc = Encoder::with_simd_level(Quality::CRF25, level);
        let encoded = enc.encode(&frame);
        c.bench_function(&format!("codec_encode_256x128/{name}"), |bench| {
            bench.iter(|| enc.encode(black_box(&frame)))
        });
        c.bench_function(&format!("codec_decode_256x128/{name}"), |bench| {
            bench.iter(|| enc.decode(black_box(&encoded)).expect("decodes"))
        });
        c.bench_function(&format!("dct_8x8/{name}"), |bench| {
            bench.iter(|| {
                let mut out = [0.0f32; 64];
                dct.forward(black_box(&block), &mut out, level);
                out
            })
        });
        c.bench_function(&format!("quantize_8x8/{name}"), |bench| {
            bench.iter(|| {
                let mut q = [0i32; 64];
                simd::quantize_8x8(black_box(&coeffs), &qtable, &mut q, level);
                q
            })
        });
    }
}

fn bench_cache(c: &mut Criterion) {
    let mut cache: FrameCache<u64> = FrameCache::new(CacheConfig::infinite(CacheVersion::V3));
    for i in 0..2000i32 {
        let pos = Vec2::new((i % 100) as f64, (i / 100) as f64);
        cache.insert(
            FrameMeta {
                grid: GridPoint::new(i, i),
                pos,
                leaf: LeafId(0),
                near_hash: 1,
            },
            FrameSource::SelfPrefetch,
            i as u64,
            1,
            pos,
        );
    }
    let query = CacheQuery {
        grid: GridPoint::new(50, 0),
        pos: Vec2::new(50.3, 0.2),
        leaf: LeafId(0),
        near_hash: 1,
        dist_thresh: 1.0,
    };
    c.bench_function("cache_lookup_2000_entries", |bench| {
        bench.iter(|| cache.lookup(black_box(&query)).copied())
    });
}

fn bench_cutoff(c: &mut Criterion) {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(7);
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig::for_spec(&spec);
    let p = scene.bounds().center();
    c.bench_function("cutoff_solve_one_location", |bench| {
        bench.iter(|| max_cutoff_radius(black_box(&scene), &device, &config, p))
    });
}

fn bench_fleet_store(c: &mut Criterion) {
    // The fleet's sharded store on the hot path: a similar-match lookup
    // against a populated shard, and the insert + global-budget path.
    let store = SharedFrameStore::new(StoreConfig::default());
    for i in 0..2000i32 {
        let pos = Vec2::new((i % 100) as f64, (i / 100) as f64);
        store.insert(
            GameId::VikingVillage,
            FrameMeta {
                grid: GridPoint::new(i, i),
                pos,
                leaf: LeafId((i % 16) as u32),
                near_hash: 1,
            },
            1024,
        );
    }
    let query = CacheQuery {
        grid: GridPoint::new(50, 0),
        pos: Vec2::new(50.3, 0.2),
        leaf: LeafId(2),
        near_hash: 1,
        dist_thresh: 1.0,
    };
    c.bench_function("fleet_store_lookup_2000_entries", |bench| {
        bench.iter(|| store.lookup(GameId::VikingVillage, black_box(&query)))
    });
    let mut n = 0i32;
    c.bench_function("fleet_store_insert", |bench| {
        bench.iter(|| {
            n += 1;
            let pos = Vec2::new((n % 500) as f64 * 0.37, (n / 500) as f64 * 0.37);
            store.insert(
                GameId::Fps,
                FrameMeta {
                    grid: GridPoint::new(n, -n),
                    pos,
                    leaf: LeafId((n % 16) as u32),
                    near_hash: 2,
                },
                black_box(1024),
            )
        })
    });
}

fn bench_telemetry(c: &mut Criterion) {
    // The zero-cost-when-disabled gate. `render_all_256x128` above
    // already runs the instrumented hot path with the default disabled
    // sink, so BENCH_render.json tracks any regression against the
    // pre-telemetry seed; these benches make the overhead directly
    // visible: the raw no-op call, and the same render with a disabled
    // vs a recording sink explicitly attached (the disabled variant
    // must stay within 1 % of `render_all_256x128`).
    let track = TrackId { pid: 1, tid: 0 };
    let disabled = TelemetrySink::disabled();
    c.bench_function("telemetry_noop_span", |bench| {
        bench.iter(|| {
            black_box(&disabled).span(track, Stage::Render, "noop", 0.0, 1.0, 0);
        })
    });
    let recording = TelemetrySink::recording(TelemetryConfig::default());
    c.bench_function("telemetry_recording_span", |bench| {
        bench.iter(|| {
            black_box(&recording).span(track, Stage::Render, "hot", 0.0, 1.0, 0);
        })
    });

    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(7);
    let eye = scene.eye(scene.bounds().center());
    let renderer_off =
        Renderer::new(RenderOptions::default()).with_telemetry(TelemetrySink::disabled());
    c.bench_function("render_all_256x128_sink_disabled", |bench| {
        bench.iter(|| renderer_off.render_panorama(black_box(&scene), eye, RenderFilter::All))
    });
    let renderer_on = Renderer::new(RenderOptions::default())
        .with_telemetry(TelemetrySink::recording(TelemetryConfig::default()));
    c.bench_function("render_all_256x128_sink_recording", |bench| {
        bench.iter(|| renderer_on.render_panorama(black_box(&scene), eye, RenderFilter::All))
    });
}

criterion_group!(
    benches,
    bench_ssim,
    bench_codec,
    bench_render,
    bench_simd_levels,
    bench_cache,
    bench_cutoff,
    bench_fleet_store,
    bench_telemetry
);
criterion_main!(benches);
