//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--seed N] [--rooms N] [--players N] [--net SCENARIO]
//!             [--predictor POLICY] [--shards N] [--store local|sharded]
//!             [--churn SCENARIO] [--policy first-fit|affinity]
//!             [--trace FILE] <name>...
//! experiments all
//! experiments fleet --rooms 256 --players 2
//! experiments fleet --rooms 2 --players 2 --net burst-loss
//! experiments fleet --rooms 4 --predictor vpm
//! experiments fleet --rooms 8 --shards 4
//! experiments fleet --rooms 4 --churn steady --policy affinity
//! experiments fleet --trace trace.json
//! ```
//!
//! Names: table1 table2 table3 table4 table5 table6 table7 table8 table9
//! table10 fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig11 fig12 ablations fleet
//! bench-json
//!
//! `bench-json` times the render/SSIM hot kernels and writes the medians
//! to `BENCH_render.json`, plus the fleet headline numbers (tail FPS,
//! store hit ratio, egress) to `BENCH_fleet.json` (the committed perf
//! trajectory); it is not part of `all`.
//!
//! `bench-json` also runs the serving-plane connection ladder (a real
//! in-process UDS server under the trajectory load generator) and
//! writes sessions/core, frame-latency percentiles and saturation
//! egress to `BENCH_serve.json`.
//!
//! `--rooms`/`--players`/`--net`/`--predictor` size the `fleet`
//! experiment only.
//! `--net` selects the FI fault scenario (`none`, `wifi`, `burst-loss`,
//! `latency-spikes`, `relay-outage`; default `none` = lossless).
//! `--predictor` selects the farm's speculation policy (`none`, `cv`,
//! `vpm`; default `none` reproduces predictor-less reports byte for
//! byte, cv/vpm rank the farm queue by predicted pose occupancy and
//! report speculation precision/recall).
//! `--shards N` spreads the fleet over N worker processes; with more
//! than one worker the fleet experiment compares the sharded store
//! fabric against isolated per-worker stores. `--store` picks the
//! backend (`local`, `sharded`; default sharded when `--shards` > 1,
//! local otherwise — `--shards 1 --store local` reproduces the
//! single-worker report byte for byte).
//! `--churn SCENARIO` replaces the static fleet with a seeded arrival
//! process (`none`, `steady`, `flash`, `daycurve`) placed by the
//! matchmaker: the `fleet` experiment then compares `--policy` against
//! the other placement policy on the same arrival trace, and
//! `bench-json` appends a `matchmaking` section to `BENCH_fleet.json`
//! (the default `--churn none` keeps both byte-identical).
//! `--trace FILE` runs the experiment with budget attribution enabled
//! and writes a Chrome `trace_event` JSON (load in Perfetto or
//! `chrome://tracing`): slices for spans and frames, counter ("C")
//! tracks for gauges like store occupancy. It applies to `fleet` and to
//! the single-session tables `table1`, `table7` and `table8`. The
//! export is validated — it must parse and every frame slice's stage
//! decomposition must recombine to its duration within 1 % — before
//! `trace ok` is printed.

use coterie_bench::{
    ablation, cache_exp, cutoff_exp, fleet_exp, kernel_bench, similarity, system_exp, ExpConfig,
};
use coterie_net::NetScenario;
use coterie_serve::{ChurnScenario, PlacementPolicy, PredictorKind, StoreBackend};
use coterie_telemetry::{
    chrome_trace_json_full, validate_chrome_trace, TelemetryConfig, TelemetrySink,
};
use std::time::Instant;

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "fig1",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig11",
    "fig12",
    "ablations",
    "fleet",
];

/// Arguments consumed only by the fleet experiment.
struct FleetArgs {
    rooms: usize,
    players: usize,
    net: NetScenario,
    predictor: PredictorKind,
    shards: usize,
    store: Option<StoreBackend>,
    trace: Option<String>,
    churn: ChurnScenario,
    policy: PlacementPolicy,
}

impl FleetArgs {
    /// The store backend after defaulting: sharded for a multi-worker
    /// fleet, local otherwise.
    fn backend(&self) -> StoreBackend {
        self.store.unwrap_or(if self.shards > 1 {
            StoreBackend::Sharded
        } else {
            StoreBackend::Local
        })
    }
}

/// Runs a single-session table, optionally with `--trace FILE` budget
/// attribution: the traced run exports a validated Chrome `trace_event`
/// JSON (slices + counter tracks) exactly like the fleet path.
fn run_table_traced(
    config: &ExpConfig,
    trace: &Option<String>,
    table: impl Fn(&ExpConfig, &TelemetrySink) -> coterie_bench::Report,
) -> Result<String, String> {
    let Some(path) = trace else {
        return Ok(table(config, &TelemetrySink::disabled()).to_string());
    };
    let sink = TelemetrySink::recording(TelemetryConfig::default());
    let report = table(config, &sink);
    let json = chrome_trace_json_full(
        &sink.spans_snapshot(),
        &sink.frames_snapshot(),
        &sink.counters_snapshot(),
        sink.budget_ms(),
    );
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    let check =
        validate_chrome_trace(&json).map_err(|e| format!("trace validation failed: {e}"))?;
    Ok(format!(
        "{report}\ntrace ok: {} events, {} frame slices, {} counter samples, \
         max attribution error {:.4}%, wrote {path}",
        check.events,
        check.frames,
        check.counters,
        check.max_rel_err * 100.0,
    ))
}

fn run_one(name: &str, config: &ExpConfig, fleet_args: &FleetArgs) -> Result<String, String> {
    let out = match name {
        "table1" => run_table_traced(config, &fleet_args.trace, system_exp::table1_traced)?,
        "table2" => cutoff_exp::table2(config).to_string(),
        "table3" => cutoff_exp::table3(config).0.to_string(),
        "table4" => cache_exp::table4(config).to_string(),
        "table5" => cache_exp::table5(config).0.to_string(),
        "table6" => cache_exp::table6(config).0.to_string(),
        "table7" => run_table_traced(config, &fleet_args.trace, system_exp::table7_traced)?,
        "table8" => run_table_traced(config, &fleet_args.trace, system_exp::table8_traced)?,
        "table9" => system_exp::table9(config).0.to_string(),
        "table10" => system_exp::table10(config).to_string(),
        "fig1" => similarity::fig1(config).0.to_string(),
        "fig2" => similarity::fig2(config).0.to_string(),
        "fig3" => similarity::fig3(config).0.to_string(),
        "fig5" => similarity::fig5(config).0.to_string(),
        "fig6" => cutoff_exp::fig6(config).0.to_string(),
        "fig7" => cutoff_exp::fig7(config).0.to_string(),
        "fig8" => cutoff_exp::fig8(config).0.to_string(),
        "fig11" => system_exp::fig11(config).0.to_string(),
        "fig12" => system_exp::fig12(config).to_string(),
        "ablations" => {
            format!(
                "{}\n{}\n{}\n{}",
                ablation::ablation_cutoff(config),
                ablation::ablation_cache_capacity(config),
                ablation::ablation_codec_quality(config),
                ablation::ablation_lookup_criteria(config)
            ) + &format!("\n{}", ablation::ablation_panoramic(config))
        }
        "fleet" => {
            // A churned fleet takes the matchmaking-comparison path:
            // the same seeded arrival trace placed by --policy and by
            // the other policy, side by side.
            if fleet_args.churn != ChurnScenario::None {
                let (report, _, _) = fleet_exp::matchmaking(
                    config,
                    fleet_args.rooms,
                    fleet_args.players,
                    fleet_args.churn,
                    fleet_args.policy,
                );
                return Ok(report.to_string());
            }
            // A multi-worker fleet takes the sharded-comparison path;
            // one worker keeps the historical shared-vs-isolated table
            // (so `--shards 1 --store local` is byte-identical to the
            // flagless run).
            let (report, shared, trace_json) = if fleet_args.shards > 1 {
                let (report, primary, _isolated, trace_json) = fleet_exp::fleet_sharded_traced(
                    config,
                    fleet_args.rooms,
                    fleet_args.players,
                    fleet_args.shards,
                    fleet_args.backend(),
                    fleet_args.net,
                    fleet_args.predictor,
                    fleet_args.trace.is_some(),
                );
                (report, primary, trace_json)
            } else {
                let (report, shared, _isolated, trace_json) = fleet_exp::fleet_traced(
                    config,
                    fleet_args.rooms,
                    fleet_args.players,
                    fleet_args.net,
                    fleet_args.predictor,
                    fleet_args.trace.is_some(),
                );
                (report, shared, trace_json)
            };
            let mut out = report.to_string();
            if let (Some(path), Some(json)) = (&fleet_args.trace, &trace_json) {
                std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
                let check = coterie_telemetry::validate_chrome_trace(json)
                    .map_err(|e| format!("trace validation failed: {e}"))?;
                let frames = shared
                    .metrics
                    .telemetry
                    .as_ref()
                    .map(|t| t.frames)
                    .unwrap_or(0);
                out.push_str(&format!(
                    "\ntrace ok: {} events, {} frame slices ({} frames attributed), \
                     {} counter samples, max attribution error {:.4}%, wrote {path}",
                    check.events,
                    check.frames,
                    frames,
                    check.counters,
                    check.max_rel_err * 100.0,
                ));
            }
            out
        }
        "bench-json" => {
            let samples = if config.quick { 5 } else { 21 };
            let timings = kernel_bench::run(samples);
            let levels = kernel_bench::run_levels(samples);
            let json = kernel_bench::to_json(&timings, &levels);
            std::fs::write("BENCH_render.json", &json)
                .map_err(|e| format!("writing BENCH_render.json: {e}"))?;
            // Fleet headline numbers ride along: the shared-store run at
            // the fixed --rooms/--players/--net configuration, traced so
            // the committed document carries the mergeable per-stage
            // histograms, not just point quantiles.
            let shared = fleet_exp::fleet_traced(
                config,
                fleet_args.rooms,
                fleet_args.players,
                fleet_args.net,
                fleet_args.predictor,
                true,
            )
            .1;
            // A predictor-driven bench also runs the `none` baseline so
            // the committed document records the hit-ratio delta the
            // policy bought; the default (predictor-less) document is
            // byte-identical to the historical format.
            let baseline = (fleet_args.predictor != PredictorKind::None).then(|| {
                fleet_exp::fleet(
                    config,
                    fleet_args.rooms,
                    fleet_args.players,
                    fleet_args.net,
                    PredictorKind::None,
                )
                .1
            });
            // The worker-scaling curve: sharded fabric vs isolated
            // workers at 1/2/4/8 shards, same load and byte budget.
            let curve = fleet_exp::fleet_scaling(
                config,
                fleet_args.rooms,
                fleet_args.players,
                &[1, 2, 4, 8],
            );
            // A churned bench also runs the matchmaking comparison so
            // the committed document records what the affinity policy
            // buys over first-fit under that churn scenario; the
            // default (churn-less) document is byte-identical to the
            // historical format.
            let mm = (fleet_args.churn != ChurnScenario::None).then(|| {
                let (_, first_fit, affinity) = fleet_exp::matchmaking(
                    config,
                    fleet_args.rooms,
                    fleet_args.players,
                    fleet_args.churn,
                    coterie_serve::PlacementPolicy::FirstFit,
                );
                (first_fit, affinity)
            });
            let fleet_json = fleet_exp::fleet_bench_json(
                &shared.metrics,
                fleet_args.rooms,
                fleet_args.players,
                fleet_args.net,
                baseline.as_ref().map(|b| &b.metrics),
                Some(&curve),
                mm.as_ref().map(|(ff, aff)| (&ff.metrics, &aff.metrics)),
            );
            std::fs::write("BENCH_fleet.json", &fleet_json)
                .map_err(|e| format!("writing BENCH_fleet.json: {e}"))?;
            // Serving-plane saturation ladder over a real UDS socket.
            let serve_config = coterie_server::ServeBenchConfig {
                seed: config.seed,
                ..if config.quick {
                    coterie_server::ServeBenchConfig::quick()
                } else {
                    coterie_server::ServeBenchConfig::default()
                }
            };
            let serve = coterie_server::serve_bench(&serve_config);
            let serve_json = coterie_server::serve_bench_json(&serve);
            std::fs::write("BENCH_serve.json", &serve_json)
                .map_err(|e| format!("writing BENCH_serve.json: {e}"))?;
            format!(
                "wrote BENCH_render.json\n{json}\nwrote BENCH_fleet.json\n{fleet_json}\
                 wrote BENCH_serve.json\n{serve_json}"
            )
        }
        other => return Err(format!("unknown experiment '{other}'")),
    };
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExpConfig::default();
    let mut fleet_args = FleetArgs {
        rooms: 8,
        players: 2,
        net: NetScenario::None,
        predictor: PredictorKind::None,
        shards: 1,
        store: None,
        trace: None,
        churn: ChurnScenario::None,
        policy: PlacementPolicy::FirstFit,
    };
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    let parse_usize = |flag: &str, v: Option<String>| -> usize {
        let v = v.unwrap_or_default();
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid {flag} value '{v}'");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--seed" => {
                config.seed = parse_usize("--seed", iter.next()) as u64;
            }
            "--rooms" => {
                fleet_args.rooms = parse_usize("--rooms", iter.next());
            }
            "--players" => {
                fleet_args.players = parse_usize("--players", iter.next());
            }
            "--shards" => {
                fleet_args.shards = parse_usize("--shards", iter.next()).max(1);
            }
            "--store" => {
                let v = iter.next().unwrap_or_default();
                fleet_args.store = Some(StoreBackend::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = StoreBackend::ALL.iter().map(|b| b.name()).collect();
                    eprintln!("invalid --store value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                }));
            }
            "--trace" => {
                let v = iter.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--trace needs an output file path");
                    std::process::exit(2);
                }
                fleet_args.trace = Some(v);
            }
            "--predictor" => {
                let v = iter.next().unwrap_or_default();
                fleet_args.predictor = PredictorKind::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = PredictorKind::ALL.iter().map(|p| p.name()).collect();
                    eprintln!(
                        "invalid --predictor value '{v}' (one of: {})",
                        names.join(" ")
                    );
                    std::process::exit(2);
                });
            }
            "--net" => {
                let v = iter.next().unwrap_or_default();
                fleet_args.net = NetScenario::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = NetScenario::ALL.iter().map(NetScenario::name).collect();
                    eprintln!("invalid --net value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                });
            }
            "--churn" => {
                let v = iter.next().unwrap_or_default();
                fleet_args.churn = ChurnScenario::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> =
                        ChurnScenario::ALL.iter().map(ChurnScenario::name).collect();
                    eprintln!("invalid --churn value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                });
            }
            "--policy" => {
                let v = iter.next().unwrap_or_default();
                fleet_args.policy = PlacementPolicy::parse(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = PlacementPolicy::ALL
                        .iter()
                        .map(PlacementPolicy::name)
                        .collect();
                    eprintln!("invalid --policy value '{v}' (one of: {})", names.join(" "));
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--seed N] [--rooms N] [--players N] \
                     [--net SCENARIO] [--predictor POLICY] [--shards N] \
                     [--store local|sharded] [--churn SCENARIO] \
                     [--policy first-fit|affinity] [--trace FILE] <name>...|all"
                );
                eprintln!("experiments: {} bench-json", ALL.join(" "));
                let names: Vec<&str> = NetScenario::ALL.iter().map(NetScenario::name).collect();
                eprintln!("net scenarios: {}", names.join(" "));
                let policies: Vec<&str> = PredictorKind::ALL.iter().map(|p| p.name()).collect();
                eprintln!("predictor policies: {}", policies.join(" "));
                let backends: Vec<&str> = StoreBackend::ALL.iter().map(|b| b.name()).collect();
                eprintln!("store backends: {}", backends.join(" "));
                let churns: Vec<&str> =
                    ChurnScenario::ALL.iter().map(ChurnScenario::name).collect();
                eprintln!("churn scenarios: {}", churns.join(" "));
                let placements: Vec<&str> = PlacementPolicy::ALL
                    .iter()
                    .map(PlacementPolicy::name)
                    .collect();
                eprintln!("placement policies: {}", placements.join(" "));
                return;
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() || names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0;
    for name in &names {
        let start = Instant::now();
        match run_one(name, &config, &fleet_args) {
            Ok(output) => {
                println!("{output}");
                println!("   [{name} took {:.1} s]\n", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
