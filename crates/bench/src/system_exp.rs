//! End-to-end system experiments: Tables 1, 7, 8, 9, 10 and Figures 11
//! and 12.

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_sim::{run_study, Session, SessionConfig, SessionSim, StudyConfig, SystemKind};
use coterie_telemetry::TelemetrySink;
use coterie_world::GameId;

fn run(
    game: GameId,
    system: SystemKind,
    players: usize,
    config: &ExpConfig,
    quality: usize,
) -> coterie_sim::SessionReport {
    run_traced(
        game,
        system,
        players,
        config,
        quality,
        &TelemetrySink::disabled(),
        0,
    )
}

/// One session with budget attribution routed into `sink`; `room`
/// becomes the trace lane, so each table cell gets its own row in the
/// exported Chrome trace. With a disabled sink this is exactly the
/// untraced run.
fn run_traced(
    game: GameId,
    system: SystemKind,
    players: usize,
    config: &ExpConfig,
    quality: usize,
    sink: &TelemetrySink,
    room: u32,
) -> coterie_sim::SessionReport {
    let session = SessionConfig::new(game, system, players)
        .with_duration_s(config.session_s())
        .with_seed(config.seed)
        .with_quality_samples(quality);
    let mut sim = SessionSim::new_with_telemetry(session, sink.clone(), room);
    while sim.step().is_some() {}
    sim.finish()
}

/// Table 1: Mobile, Thin-client and Multi-Furion with 1 and 2 players on
/// the three testbed games.
pub fn table1(config: &ExpConfig) -> Report {
    table1_traced(config, &TelemetrySink::disabled())
}

/// [`table1`] with per-session budget attribution routed into `sink`.
pub fn table1_traced(config: &ExpConfig, sink: &TelemetrySink) -> Report {
    let mut report = Report::new("Table 1: Mobile / Thin-client / Multi-Furion, 1P and 2P");
    report.headers([
        "App (players)",
        "FPS",
        "Inter-frame (ms)",
        "CPU (%)",
        "GPU (%)",
        "Frame (KB)",
        "Net delay (ms)",
    ]);
    let mut lane = 0u32;
    for system in [
        SystemKind::Mobile,
        SystemKind::ThinClient,
        SystemKind::multi_furion(),
    ] {
        report.note(format!("--- {}", system.label()));
        for players in [1usize, 2] {
            for &game in &GameId::TESTBED {
                let m = run_traced(game, system, players, config, 0, sink, lane).aggregate();
                lane += 1;
                report.row([
                    format!("{} ({}P, {})", game.short_name(), players, system.label()),
                    f(m.avg_fps, 0),
                    f(m.inter_frame_ms, 1),
                    f(m.cpu_load * 100.0, 1),
                    f(m.gpu_load * 100.0, 1),
                    f(m.frame_bytes / 1000.0, 0),
                    f(m.net_delay_ms, 1),
                ]);
            }
        }
    }
    report
}

/// Table 7: visual quality (SSIM), FPS and responsiveness for
/// Thin-client, Multi-Furion and Coterie with 2 players.
pub fn table7(config: &ExpConfig) -> Report {
    table7_traced(config, &TelemetrySink::disabled())
}

/// [`table7`] with per-session budget attribution routed into `sink`.
pub fn table7_traced(config: &ExpConfig, sink: &TelemetrySink) -> Report {
    let quality = if config.quick { 3 } else { 8 };
    let mut report = Report::new("Table 7: visual quality, FPS, responsiveness (2 players)");
    report.note("T: Thin-client, M: Multi-Furion, C: Coterie");
    report.headers(["App", "SSIM", "FPS", "Responsiveness (ms)"]);
    let mut lane = 0u32;
    for (system, tag) in [
        (SystemKind::ThinClient, "T"),
        (SystemKind::multi_furion(), "M"),
        (SystemKind::coterie(), "C"),
    ] {
        for &game in &GameId::TESTBED {
            let m = run_traced(game, system, 2, config, quality, sink, lane).aggregate();
            lane += 1;
            report.row([
                format!("{} ({tag})", game.short_name()),
                f(m.visual_ssim, 3),
                f(m.avg_fps, 0),
                f(m.responsiveness_ms, 1),
            ]);
        }
    }
    report
}

/// Table 8: Coterie's full metrics for 1 and 2 players.
pub fn table8(config: &ExpConfig) -> Report {
    table8_traced(config, &TelemetrySink::disabled())
}

/// [`table8`] with per-session budget attribution routed into `sink`.
pub fn table8_traced(config: &ExpConfig, sink: &TelemetrySink) -> Report {
    let mut report = Report::new("Table 8: Coterie on Pixel 2 over 802.11ac");
    report.headers([
        "App (players)",
        "FPS",
        "Inter-frame (ms)",
        "CPU (%)",
        "GPU (%)",
        "Frame (KB)",
        "Net delay (ms)",
    ]);
    let mut lane = 0u32;
    for players in [1usize, 2] {
        for &game in &GameId::TESTBED {
            let m =
                run_traced(game, SystemKind::coterie(), players, config, 0, sink, lane).aggregate();
            lane += 1;
            report.row([
                format!("{} ({players}P)", game.short_name()),
                f(m.avg_fps, 0),
                f(m.inter_frame_ms, 1),
                f(m.cpu_load * 100.0, 1),
                f(m.gpu_load * 100.0, 1),
                f(m.frame_bytes / 1000.0, 0),
                f(m.net_delay_ms, 1),
            ]);
        }
    }
    report
}

/// Table 9: per-player BE bandwidth (Mbps) and FI traffic (Kbps) —
/// Multi-Furion at 1 player vs Coterie at 1–4 players — plus the
/// headline per-player network reduction.
pub fn table9(config: &ExpConfig) -> (Report, Vec<(GameId, f64)>) {
    let mut report = Report::new("Table 9: network bandwidth (BE Mbps / FI Kbps)");
    report.note("Multi-Furion saturates beyond 1 player, so only its 1P load is shown");
    report.headers([
        "App",
        "MF 1P",
        "Coterie 1P",
        "Coterie 2P",
        "Coterie 3P",
        "Coterie 4P",
        "Reduction",
    ]);
    let mut reductions = Vec::new();
    for &game in &GameId::TESTBED {
        let mf = run(game, SystemKind::multi_furion(), 1, config, 0).aggregate();
        let mut cells = vec![
            game.short_name().to_string(),
            format!("{:.0}/{:.0}", mf.be_mbps, mf.fi_kbps),
        ];
        let mut coterie_1p = 0.0;
        for players in 1..=4usize {
            let report_n = run(game, SystemKind::coterie(), players, config, 0);
            // Table 9 reports aggregate server-side BE bandwidth.
            let total_be: f64 = report_n.players.iter().map(|p| p.be_mbps).sum();
            let fi = report_n.aggregate().fi_kbps;
            if players == 1 {
                coterie_1p = total_be;
            }
            cells.push(format!("{total_be:.0}/{fi:.0}"));
        }
        let reduction = mf.be_mbps / coterie_1p.max(1e-9);
        cells.push(format!("{reduction:.1}x"));
        reductions.push((game, reduction));
        report.row(cells);
    }
    (report, reductions)
}

/// Table 10: the (simulated) user study score distribution.
pub fn table10(config: &ExpConfig) -> Report {
    let study = StudyConfig {
        participants: 12,
        traces: if config.quick { 3 } else { 6 },
        trace_seconds: if config.quick { 8.0 } else { 20.0 },
        probes: if config.quick { 2 } else { 5 },
        seed: config.seed,
    };
    let outcome = run_study(&study);
    let mut report = Report::new("Table 10: simulated user study (MOS model)");
    report.note("paper: 0% / 0% / 5.5% / 29.2% / 65.3%, per-trace means 4.5-4.75");
    report.note(format!("mean score {:.2}", outcome.mean_score));
    report.headers(["Score", "1", "2", "3", "4", "5"]);
    let mut row = vec!["Percentage".to_string()];
    for s in 1..=5 {
        row.push(pct(outcome.fraction(s)));
    }
    report.row(row);
    report
}

/// Figure 11: FPS scalability with 1–4 players for Multi-Furion (± exact
/// cache) and Coterie (± similar cache) on the three testbed games.
pub fn fig11(config: &ExpConfig) -> (Report, Vec<(GameId, SystemKind, Vec<f64>)>) {
    let systems = [
        SystemKind::MultiFurion { cache: false },
        SystemKind::MultiFurion { cache: true },
        SystemKind::Coterie { cache: false },
        SystemKind::Coterie { cache: true },
    ];
    let mut results = Vec::new();
    let mut report = Report::new("Figure 11: FPS vs number of players");
    report.headers(["Game", "System", "1P", "2P", "3P", "4P"]);
    for &game in &GameId::TESTBED {
        for system in systems {
            let mut fps = Vec::new();
            for players in 1..=4usize {
                let m = run(game, system, players, config, 0).aggregate();
                fps.push(m.avg_fps);
            }
            report.row([
                game.short_name().to_string(),
                system.label().to_string(),
                f(fps[0], 0),
                f(fps[1], 0),
                f(fps[2], 0),
                f(fps[3], 0),
            ]);
            results.push((game, system, fps));
        }
    }
    (report, results)
}

/// Figure 12: CPU/GPU/temperature/power over a long session for 1–4
/// players.
pub fn fig12(config: &ExpConfig) -> Report {
    let duration = if config.quick { 180.0 } else { 1800.0 };
    let mut report = Report::new("Figure 12: resource usage over time (Coterie)");
    report.note(format!(
        "{duration:.0} s sessions; per-minute means over the session"
    ));
    report.headers([
        "Game",
        "Players",
        "CPU (%)",
        "GPU (%)",
        "Peak temp (C)",
        "Mean power (W)",
    ]);
    for &game in &GameId::TESTBED {
        for players in 1..=4usize {
            let session = SessionConfig::new(game, SystemKind::coterie(), players)
                .with_duration_s(duration)
                .with_seed(config.seed);
            let r = Session::new(session).run();
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            report.row([
                game.short_name().to_string(),
                players.to_string(),
                f(mean(&r.resources.cpu) * 100.0, 1),
                f(mean(&r.resources.gpu) * 100.0, 1),
                f(r.resources.peak_temperature_c(), 1),
                f(r.resources.mean_power_w(), 2),
            ]);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_coterie_hits_60fps() {
        let r = table8(&ExpConfig::quick());
        assert_eq!(r.len(), 6);
        for row in 0..r.len() {
            let fps: f64 = r.cell(row, 1).expect("fps cell").parse().expect("number");
            assert!(fps >= 55.0, "Coterie row {row} at {fps} FPS");
        }
    }

    #[test]
    fn table9_reduction_is_large() {
        let (_, reductions) = table9(&ExpConfig::quick());
        for (game, red) in reductions {
            assert!(red > 4.0, "{game}: reduction {red:.1}x too small");
        }
    }
}
