//! Frame-cache experiments: Tables 4, 5 and 6.
//!
//! These are the paper's trace-replay studies (§4.6): player movement is
//! replayed against infinite-size frame caches under the five lookup
//! configurations of Table 4. "There is no need to generate and
//! manipulate the actual far BE frames as the cache lookup outcome is
//! determined by the frame locations in the game" — the caches here
//! store `()` payloads.

use crate::report::{pct, Report};
use crate::ExpConfig;
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_core::{CacheConfig, CacheQuery, CacheVersion, FrameCache, FrameMeta, FrameSource};
use coterie_device::DeviceProfile;
use coterie_world::{GameId, GameSpec, TraceSet};

/// Table 4: the five cache configurations.
pub fn table4(_config: &ExpConfig) -> Report {
    let mut report = Report::new("Table 4: five frame cache configurations");
    report.headers(["Version", "Reuse Intra-player", "Reuse Inter-player"]);
    for v in CacheVersion::ALL {
        let show = |m: Option<coterie_core::MatchMode>| match m {
            None => "",
            Some(coterie_core::MatchMode::Exact) => "yes (exact)",
            Some(coterie_core::MatchMode::Similar) => "yes (similar)",
        };
        report.row([v.label(), show(v.intra), show(v.inter)]);
    }
    report
}

/// Replays an `n`-player session against per-player caches of the given
/// version (with server replies "overheard" by all players, §4.6) and
/// returns each player's hit ratio.
pub fn replay_hit_ratios(
    game: GameId,
    players: usize,
    version: CacheVersion,
    duration_s: f64,
    seed: u64,
) -> Vec<f64> {
    let spec = GameSpec::for_game(game);
    let scene = spec.build_scene(seed);
    let device = DeviceProfile::pixel2();
    let map = CutoffMap::compute(&scene, &device, &CutoffConfig::for_spec(&spec), seed);
    let traces = TraceSet::generate(&scene, &spec, players, duration_s, 1.0 / 60.0, seed);
    let mut caches: Vec<FrameCache<()>> = (0..players)
        .map(|_| FrameCache::new(CacheConfig::infinite(version)))
        .collect();

    let mut prev_gp: Vec<Option<coterie_world::GridPoint>> = vec![None; players];
    let ticks = (duration_s * 60.0) as usize;
    for tick in 0..ticks {
        for p in 0..players {
            let trace = traces.player(p).expect("player exists");
            let pts = trace.points();
            let pos = pts[tick.min(pts.len() - 1)].position;
            let gp = scene.grid().snap(pos);
            // A frame request happens when the player reaches a *new*
            // grid point; while it stays on the same point the current
            // frame remains valid and nothing is requested.
            if prev_gp[p] == Some(gp) {
                continue;
            }
            prev_gp[p] = Some(gp);
            let (leaf, radius, dist_thresh) = map.lookup_params(pos);
            let near_hash = scene.near_set_hash(pos, radius);
            let query = CacheQuery {
                grid: gp,
                pos,
                leaf,
                near_hash,
                dist_thresh,
            };
            if caches[p].lookup(&query).is_none() {
                // Miss: the server's reply reaches the requester and is
                // overheard by everyone else.
                let meta = FrameMeta {
                    grid: gp,
                    pos,
                    leaf,
                    near_hash,
                };
                caches[p].insert(meta, FrameSource::SelfPrefetch, (), 1, pos);
                for (other, cache) in caches.iter_mut().enumerate() {
                    if other != p {
                        cache.insert(meta, FrameSource::Overheard, (), 1, pos);
                    }
                }
            }
        }
    }
    caches.iter().map(|c| c.stats().hit_ratio()).collect()
}

/// Table 5: Viking Village hit ratios under the five versions for 1–4
/// players.
pub fn table5(config: &ExpConfig) -> (Report, Vec<(CacheVersion, Vec<f64>)>) {
    let duration = config.session_s();
    let mut results = Vec::new();
    for version in CacheVersion::ALL {
        let mut per_count = Vec::new();
        for players in 1..=4 {
            let ratios = replay_hit_ratios(
                GameId::VikingVillage,
                players,
                version,
                duration,
                config.seed,
            );
            let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
            per_count.push(avg);
        }
        results.push((version, per_count));
    }
    let mut report = Report::new("Table 5: Viking Village cache hit ratio, 5 versions");
    report.headers(["Version", "1-player", "2-player", "3-player", "4-player"]);
    for (v, ratios) in &results {
        let mut row = vec![v.label().to_string()];
        row.extend(ratios.iter().map(|&r| pct(r)));
        report.row(row);
    }
    (report, results)
}

/// Table 6: average Version-3 hit ratio across players for the three
/// testbed games, plus the implied prefetch-frequency reduction.
pub fn table6(config: &ExpConfig) -> (Report, Vec<(GameId, f64)>) {
    let duration = config.session_s();
    let mut results = Vec::new();
    for &game in &GameId::TESTBED {
        let ratios = replay_hit_ratios(game, 4, CacheVersion::V3, duration, config.seed);
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        results.push((game, avg));
    }
    let mut report = Report::new("Table 6: average cache hit ratio (4 players, Version 3)");
    report.note("paper: Viking 80.8%, Racing 82.3%, CTS 88.4% => 5.2x/5.6x/8.6x fewer prefetches");
    report.headers(["Game", "Avg. hit ratio", "Prefetch reduction"]);
    for (game, avg) in &results {
        let reduction = if *avg < 1.0 {
            1.0 / (1.0 - avg)
        } else {
            f64::INFINITY
        };
        report.row([
            game.short_name().to_string(),
            pct(*avg),
            format!("{reduction:.1}x"),
        ]);
    }
    (report, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_lists_all_versions() {
        let r = table4(&ExpConfig::quick());
        assert_eq!(r.len(), 5);
        assert_eq!(r.cell(0, 0), Some("Version 1"));
    }

    #[test]
    fn exact_versions_have_near_zero_hits() {
        // Table 5 rows 1-2: exact matching never hits because neither
        // the player nor other players retrace the identical grid path.
        let v1 = replay_hit_ratios(GameId::VikingVillage, 2, CacheVersion::V1, 15.0, 3);
        let v2 = replay_hit_ratios(GameId::VikingVillage, 2, CacheVersion::V2, 15.0, 3);
        for r in v1.iter().chain(&v2) {
            assert!(*r < 0.25, "exact-match hit ratio unexpectedly high: {r}");
        }
    }

    #[test]
    fn similar_intra_achieves_high_hit_ratio() {
        // Table 5 row 3: ~80% hits from intra-player similar reuse.
        let v3 = replay_hit_ratios(GameId::VikingVillage, 1, CacheVersion::V3, 20.0, 3);
        assert!(v3[0] > 0.5, "V3 hit ratio {:.2}", v3[0]);
    }

    #[test]
    fn inter_only_needs_other_players() {
        // Version 4 with one player has nothing to overhear.
        let v4 = replay_hit_ratios(GameId::VikingVillage, 1, CacheVersion::V4, 10.0, 3);
        assert_eq!(v4[0], 0.0);
        // With two players it picks up the other's frames (movement
        // proximity permitting).
        let v4_2p = replay_hit_ratios(GameId::RacingMountain, 2, CacheVersion::V4, 15.0, 3);
        assert!(v4_2p.iter().any(|&r| r >= 0.0)); // smoke: runs and is finite
    }

    #[test]
    fn v5_no_worse_than_v3() {
        // Table 5's headline: V5 ~= V3 (inter-player adds little), and
        // it can never be worse.
        let v3 = replay_hit_ratios(GameId::VikingVillage, 2, CacheVersion::V3, 15.0, 3);
        let v5 = replay_hit_ratios(GameId::VikingVillage, 2, CacheVersion::V5, 15.0, 3);
        let m3 = v3.iter().sum::<f64>() / v3.len() as f64;
        let m5 = v5.iter().sum::<f64>() / v5.len() as f64;
        assert!(m5 >= m3 - 0.02, "V5 {m5:.2} vs V3 {m3:.2}");
    }
}
