//! Fleet-hosting experiment: the cross-session frame store.
//!
//! The paper provisions one render server per session. A hosting
//! provider runs hundreds of rooms of the same handful of games, which
//! raises a question the paper leaves open: do the three similarity
//! criteria still pay off when the cache is shared *across* sessions?
//! This experiment runs the same fleet twice — once with one shared
//! frame store, once with an equal total byte budget split into
//! isolated per-room stores — and compares tail FPS, store hit ratio,
//! shipped bandwidth and pre-render GPU cost.

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_net::NetScenario;
use coterie_serve::{
    ChurnScenario, Fleet, FleetConfig, FleetReport, PlacementPolicy, PredictorKind, StoreBackend,
};
use coterie_telemetry::{chrome_trace_json_full, Stage, TelemetryConfig, TelemetrySink};
use coterie_world::GameId;

/// Builds the fleet configuration for the experiment.
///
/// Rooms cycle through two roam-family games so the store also
/// demonstrates per-game isolation; only rooms of the same game share
/// frames.
pub fn fleet_config(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    shared: bool,
    net: NetScenario,
    predictor: PredictorKind,
) -> FleetConfig {
    FleetConfig {
        rooms: rooms.max(1),
        players: players.max(1),
        games: vec![GameId::VikingVillage, GameId::Fps],
        duration_s: if config.quick { 4.0 } else { 10.0 },
        seed: config.seed,
        shared_store: shared,
        size_samples: if config.quick { 4 } else { 8 },
        net,
        predictor,
        ..FleetConfig::default()
    }
}

/// Runs the shared-vs-isolated comparison and renders the report.
///
/// `net` selects the FI fault scenario applied to every room
/// ([`NetScenario::None`] reproduces the lossless pre-fault-plane
/// table byte for byte); lossy scenarios append an FI recovery table.
/// `predictor` selects the farm's speculation policy
/// ([`PredictorKind::None`] reproduces the predictor-less table byte
/// for byte); cv/vpm runs append speculation precision/recall notes.
///
/// The run is deterministic: the same `ExpConfig` seed, room/player
/// counts, scenario and predictor reproduce the report byte for byte.
pub fn fleet(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    net: NetScenario,
    predictor: PredictorKind,
) -> (Report, FleetReport, FleetReport) {
    let (report, shared, isolated, _) = fleet_traced(config, rooms, players, net, predictor, false);
    (report, shared, isolated)
}

/// [`fleet`] with optional budget-attribution tracing of the *shared*
/// run. When `trace` is set the shared fleet runs with a recording
/// [`TelemetrySink`]; the returned string is the Chrome `trace_event`
/// JSON export (loadable in Perfetto / `chrome://tracing`) and the
/// report gains a telemetry note. Telemetry is observation-only, so the
/// comparison table is byte-identical either way.
pub fn fleet_traced(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    net: NetScenario,
    predictor: PredictorKind,
    trace: bool,
) -> (Report, FleetReport, FleetReport, Option<String>) {
    let sink = if trace {
        TelemetrySink::recording(TelemetryConfig::default())
    } else {
        TelemetrySink::disabled()
    };
    let shared = Fleet::new_with_telemetry(
        fleet_config(config, rooms, players, true, net, predictor),
        sink.clone(),
    )
    .run();
    let isolated = Fleet::new(fleet_config(config, rooms, players, false, net, predictor)).run();
    let trace_json = sink.is_enabled().then(|| {
        chrome_trace_json_full(
            &sink.spans_snapshot(),
            &sink.frames_snapshot(),
            &sink.counters_snapshot(),
            sink.budget_ms(),
        )
    });

    let mut report = Report::new("Fleet: shared vs isolated cross-session frame store");
    report.note(format!(
        "{} rooms x {} players, seed {}, games Viking Village + FPS",
        rooms.max(1),
        players.max(1),
        config.seed
    ));
    report.note("one store shared by all rooms of a game vs the same byte budget split per room");
    if net.is_lossy() {
        report.note(format!(
            "FI fault scenario '{net}': lossy per-player channels with retry + dead reckoning"
        ));
    }
    if predictor != PredictorKind::None {
        report.note(format!(
            "speculation policy '{predictor}': farm queue ranked by predicted occupancy, \
             cost-aware store admission"
        ));
    }
    report.headers([
        "store",
        "fps p50",
        "fps p95",
        "fps p99",
        "hit ratio",
        "egress Mbps",
        "GPU-hours",
        "peak degC",
        "degraded",
    ]);
    for (label, run) in [("shared", &shared), ("isolated", &isolated)] {
        let m = &run.metrics;
        report.row([
            label.to_string(),
            f(m.fps_p50, 2),
            f(m.fps_p95, 2),
            f(m.fps_p99, 2),
            pct(m.store_hit_ratio),
            f(m.egress_mbps, 2),
            f(m.prerender_gpu_hours, 6),
            f(m.peak_temperature_c, 2),
            format!("{}", m.degraded_rooms),
        ]);
    }
    if net.is_lossy() {
        for (label, run) in [("shared", &shared), ("isolated", &isolated)] {
            let m = &run.metrics;
            report.note(format!(
                "fi {label}: {} syncs, {} retries, {} stale frames, {} cap violations, \
                 max staleness {} ms, desync p95 {} m / p99 {} m",
                m.fi_syncs,
                m.fi_retries,
                m.fi_stale_frames,
                m.fi_cap_violations,
                f(m.fi_max_staleness_ms, 2),
                f(m.desync_p95_m, 4),
                f(m.desync_p99_m, 4),
            ));
        }
    }
    if predictor != PredictorKind::None {
        for (label, run) in [("shared", &shared), ("isolated", &isolated)] {
            let m = &run.metrics;
            report.note(format!(
                "speculation {label}: {} rendered, {} used, {} hits, {} rejected, \
                 precision {}, recall {}",
                m.spec_rendered,
                m.spec_used,
                m.spec_hits,
                m.spec_rejected,
                f(m.spec_precision, 4),
                f(m.spec_recall, 4),
            ));
        }
    }
    if let Some(t) = &shared.metrics.telemetry {
        report.note(format!(
            "telemetry shared: {} frames attributed, {} over the {} ms budget ({})",
            t.frames,
            t.over_budget,
            f(t.budget_ms, 1),
            pct(t.over_budget_ratio()),
        ));
    }
    (report, shared, isolated, trace_json)
}

/// Builds the churned fleet configuration: the static rooms/players
/// grid becomes a *capacity* that a seeded arrival process fills
/// through the matchmaker under `policy`.
pub fn churned_fleet_config(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    scenario: ChurnScenario,
    policy: PlacementPolicy,
) -> FleetConfig {
    FleetConfig {
        churn: scenario,
        policy,
        ..fleet_config(
            config,
            rooms,
            players,
            true,
            NetScenario::None,
            PredictorKind::None,
        )
    }
}

/// Runs the matchmaking experiment: the same seeded churn trace placed
/// by both policies (first-fit vs pose-affinity), shared store, and
/// compares tail FPS, store hit ratio, and placement outcomes.
///
/// `lead` picks which policy heads the table (the policy under test);
/// both always run. Returns `(report, lead run, other run)`.
/// Deterministic: the same inputs reproduce the report byte for byte.
pub fn matchmaking(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    scenario: ChurnScenario,
    lead: PlacementPolicy,
) -> (Report, FleetReport, FleetReport) {
    assert_ne!(scenario, ChurnScenario::None, "matchmaking needs churn");
    let run = |policy| {
        Fleet::new(churned_fleet_config(
            config, rooms, players, scenario, policy,
        ))
        .run()
    };
    let lead_run = run(lead);
    let other_policy = match lead {
        PlacementPolicy::FirstFit => PlacementPolicy::Affinity,
        PlacementPolicy::Affinity => PlacementPolicy::FirstFit,
    };
    let other_run = run(other_policy);

    let mut report = Report::new("Fleet: matchmaking policy under churn");
    report.note(format!(
        "capacity {} rooms x {} players, churn '{scenario}', seed {}, shared store",
        rooms.max(1),
        players.max(1),
        config.seed
    ));
    report.note("the same seeded arrival trace placed by each policy; rooms spawn on overflow");
    report.headers([
        "policy",
        "fps p50",
        "fps p99",
        "hit ratio",
        "arrivals",
        "placed",
        "queued",
        "overflow",
        "mean wait ms",
    ]);
    for run in [&lead_run, &other_run] {
        let m = &run.metrics;
        let mm = m.matchmaking.expect("churned run carries matchmaking");
        report.row([
            mm.policy.to_string(),
            f(m.fps_p50, 2),
            f(m.fps_p99, 2),
            pct(m.store_hit_ratio),
            format!("{}", mm.arrivals),
            format!("{}", mm.placed),
            format!("{}", mm.queued),
            format!("{}", mm.overflow_rooms),
            f(mm.mean_wait_ms, 1),
        ]);
    }
    (report, lead_run, other_run)
}

/// Builds the multi-worker fleet configuration: the same rooms/players
/// mix spread round-robin over `shards` worker processes, with
/// `backend` selecting the store wiring ([`StoreBackend::Sharded`] =
/// one partitioned store exchanged between workers,
/// [`StoreBackend::Local`] = fully isolated per-worker stores with the
/// same total byte budget).
pub fn sharded_fleet_config(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    shards: usize,
    backend: StoreBackend,
    net: NetScenario,
    predictor: PredictorKind,
) -> FleetConfig {
    FleetConfig {
        shards: shards.max(1),
        backend,
        ..fleet_config(config, rooms, players, true, net, predictor)
    }
}

/// Runs the multi-worker fleet experiment: the sharded store fabric
/// against the same byte budget split into isolated per-worker stores.
///
/// With `backend` = [`StoreBackend::Sharded`] the report compares both
/// wirings (rows `sharded` and `isolated`) and the returned pair is
/// (sharded run, isolated baseline). With [`StoreBackend::Local`] only
/// the isolated fleet runs — a single `local` row, baseline `None`.
///
/// When `trace` is set the primary run records telemetry; the returned
/// string is the merged Chrome `trace_event` export spanning every
/// worker's process lane (each worker's spans rebased onto the shared
/// fleet epoch). Deterministic: same inputs, byte-identical report.
#[allow(clippy::too_many_arguments)]
pub fn fleet_sharded_traced(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    shards: usize,
    backend: StoreBackend,
    net: NetScenario,
    predictor: PredictorKind,
    trace: bool,
) -> (Report, FleetReport, Option<FleetReport>, Option<String>) {
    let sink = if trace {
        TelemetrySink::recording(TelemetryConfig::default())
    } else {
        TelemetrySink::disabled()
    };
    let primary = Fleet::new_with_telemetry(
        sharded_fleet_config(config, rooms, players, shards, backend, net, predictor),
        sink.clone(),
    )
    .run();
    let isolated = (backend == StoreBackend::Sharded).then(|| {
        Fleet::new(sharded_fleet_config(
            config,
            rooms,
            players,
            shards,
            StoreBackend::Local,
            net,
            predictor,
        ))
        .run()
    });
    let trace_json = sink.is_enabled().then(|| {
        chrome_trace_json_full(
            &sink.spans_snapshot(),
            &sink.frames_snapshot(),
            &sink.counters_snapshot(),
            sink.budget_ms(),
        )
    });

    let mut report = Report::new("Fleet: sharded store across worker processes");
    report.note(format!(
        "{} rooms x {} players over {} workers, seed {}, games Viking Village + FPS",
        rooms.max(1),
        players.max(1),
        shards.max(1),
        config.seed
    ));
    report.note(match backend {
        StoreBackend::Sharded => {
            "consistent-hash partitions + epoch exchange vs the same byte budget isolated per worker"
        }
        StoreBackend::Local => "isolated per-worker stores (no exchange plane)",
    });
    report.headers([
        "store",
        "fps p50",
        "fps p95",
        "fps p99",
        "hit ratio",
        "egress Mbps",
        "GPU-hours",
        "peak degC",
        "degraded",
    ]);
    let primary_label = match backend {
        StoreBackend::Sharded => "sharded",
        StoreBackend::Local => "local",
    };
    let mut rows: Vec<(&str, &FleetReport)> = vec![(primary_label, &primary)];
    if let Some(iso) = &isolated {
        rows.push(("isolated", iso));
    }
    for (label, run) in rows {
        let m = &run.metrics;
        report.row([
            label.to_string(),
            f(m.fps_p50, 2),
            f(m.fps_p95, 2),
            f(m.fps_p99, 2),
            pct(m.store_hit_ratio),
            f(m.egress_mbps, 2),
            f(m.prerender_gpu_hours, 6),
            f(m.peak_temperature_c, 2),
            format!("{}", m.degraded_rooms),
        ]);
    }
    if let Some(s) = &primary.metrics.sharding {
        report.note(format!(
            "exchange: {} forwards, {} replica hits, {} replica inserts, \
             {} msgs / {} bytes on the wire, {} anti-entropy evictions",
            s.forwards,
            s.replica_hits,
            s.replica_inserts,
            s.wire_msgs,
            s.wire_bytes,
            s.anti_entropy_evictions,
        ));
    }
    if let Some(t) = &primary.metrics.telemetry {
        report.note(format!(
            "telemetry {primary_label}: {} frames attributed, {} over the {} ms budget ({})",
            t.frames,
            t.over_budget,
            f(t.budget_ms, 1),
            pct(t.over_budget_ratio()),
        ));
    }
    (report, primary, isolated, trace_json)
}

/// One point of the worker-scaling curve committed in
/// `BENCH_fleet.json`: the sharded fabric and the isolated-workers
/// baseline at the same worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardScalingPoint {
    /// Worker count.
    pub shards: usize,
    /// Store hit ratio with the sharded fabric.
    pub hit_ratio: f64,
    /// Pre-render GPU-hours with the sharded fabric.
    pub gpu_hours: f64,
    /// Store hit ratio with isolated per-worker stores.
    pub isolated_hit_ratio: f64,
    /// Pre-render GPU-hours with isolated per-worker stores.
    pub isolated_gpu_hours: f64,
    /// Exchange-plane bytes the sharded run put on the wire.
    pub exchange_bytes: u64,
}

/// Runs the scaling sweep: for each worker count, the sharded fleet and
/// the isolated-workers fleet at identical load and total byte budget.
/// At one worker the two wirings coincide, anchoring the curve at zero
/// uplift.
pub fn fleet_scaling(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
    counts: &[usize],
) -> Vec<ShardScalingPoint> {
    counts
        .iter()
        .map(|&shards| {
            let run = |backend| {
                Fleet::new(sharded_fleet_config(
                    config,
                    rooms,
                    players,
                    shards,
                    backend,
                    NetScenario::None,
                    PredictorKind::None,
                ))
                .run()
            };
            let sharded = run(StoreBackend::Sharded);
            let isolated = run(StoreBackend::Local);
            ShardScalingPoint {
                shards,
                hit_ratio: sharded.metrics.store_hit_ratio,
                gpu_hours: sharded.metrics.prerender_gpu_hours,
                isolated_hit_ratio: isolated.metrics.store_hit_ratio,
                isolated_gpu_hours: isolated.metrics.prerender_gpu_hours,
                exchange_bytes: sharded
                    .metrics
                    .sharding
                    .as_ref()
                    .map(|s| s.wire_bytes)
                    .unwrap_or(0),
            }
        })
        .collect()
}

/// Renders the shared-store fleet headline numbers as the committed
/// `BENCH_fleet.json` document (the fleet-level companion of
/// `BENCH_render.json`): tail FPS percentiles, store hit ratio and
/// shipped egress for a fixed rooms/players/net configuration.
///
/// A predictor-driven run (`metrics.predictor != None`) appends a
/// per-policy `speculation` object — precision, recall and (when the
/// matching `--predictor none` baseline is supplied) the hit-ratio
/// delta the policy bought. A predictor-less run emits the historical
/// document byte for byte, so committed benchmark archives stay
/// diffable across the predictor plane's introduction.
///
/// Supplying `sharding` appends the worker-scaling curve: one object
/// per worker count with the sharded fabric's hit ratio / GPU-hours
/// next to the isolated-workers baseline. `None` leaves the document
/// byte-identical to the pre-sharding format.
///
/// Supplying `matchmaking` (the first-fit and affinity runs of the same
/// churn scenario) appends a `matchmaking` section comparing the two
/// policies' placement outcomes and resulting fleet health. `None`
/// leaves the document byte-identical to the pre-matchmaking format.
pub fn fleet_bench_json(
    metrics: &coterie_serve::FleetMetrics,
    rooms: usize,
    players: usize,
    net: NetScenario,
    baseline: Option<&coterie_serve::FleetMetrics>,
    sharding: Option<&[ShardScalingPoint]>,
    matchmaking: Option<(&coterie_serve::FleetMetrics, &coterie_serve::FleetMetrics)>,
) -> String {
    let mut out = format!(
        "{{\n  \"config\": {{ \"rooms\": {rooms}, \"players\": {players}, \"net\": \"{net}\" }},\n  \
         \"fleet\": {{\n    \"fps_p50\": {:.4},\n    \"fps_p95\": {:.4},\n    \"fps_p99\": {:.4},\n    \
         \"store_hit_ratio\": {:.6},\n    \"egress_mbps\": {:.4}\n  }}",
        metrics.fps_p50, metrics.fps_p95, metrics.fps_p99, metrics.store_hit_ratio, metrics.egress_mbps
    );
    if metrics.predictor != PredictorKind::None {
        out.push_str(&format!(
            ",\n  \"speculation\": {{\n    \"policy\": \"{}\",\n    \"rendered\": {},\n    \
             \"used\": {},\n    \"hits\": {},\n    \"rejected\": {},\n    \
             \"precision\": {:.6},\n    \"recall\": {:.6}",
            metrics.predictor,
            metrics.spec_rendered,
            metrics.spec_used,
            metrics.spec_hits,
            metrics.spec_rejected,
            metrics.spec_precision,
            metrics.spec_recall,
        ));
        if let Some(base) = baseline {
            out.push_str(&format!(
                ",\n    \"baseline_hit_ratio\": {:.6},\n    \"hit_ratio_delta\": {:.6}",
                base.store_hit_ratio,
                metrics.store_hit_ratio - base.store_hit_ratio,
            ));
        }
        out.push_str("\n  }");
    }
    if let Some(points) = sharding {
        out.push_str(",\n  \"sharding\": {\n    \"curve\": [\n");
        for (i, p) in points.iter().enumerate() {
            let sep = if i + 1 == points.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{ \"shards\": {}, \"hit_ratio\": {:.6}, \"gpu_hours\": {:.6}, \
                 \"isolated_hit_ratio\": {:.6}, \"isolated_gpu_hours\": {:.6}, \
                 \"exchange_bytes\": {} }}{sep}\n",
                p.shards,
                p.hit_ratio,
                p.gpu_hours,
                p.isolated_hit_ratio,
                p.isolated_gpu_hours,
                p.exchange_bytes,
            ));
        }
        out.push_str("    ]\n  }");
    }
    if let Some((first_fit, affinity)) = matchmaking {
        let scenario = first_fit
            .matchmaking
            .map(|m| m.scenario)
            .unwrap_or(ChurnScenario::None);
        out.push_str(&format!(
            ",\n  \"matchmaking\": {{\n    \"scenario\": \"{scenario}\",\n"
        ));
        for (i, (key, m)) in [("first_fit", first_fit), ("affinity", affinity)]
            .into_iter()
            .enumerate()
        {
            let sep = if i == 0 { "," } else { "" };
            let mm = m.matchmaking.expect("churned metrics carry matchmaking");
            out.push_str(&format!(
                "    \"{key}\": {{ \"store_hit_ratio\": {:.6}, \"fps_p50\": {:.4}, \
                 \"fps_p99\": {:.4}, \"arrivals\": {}, \"placed\": {}, \"queued\": {}, \
                 \"overflow_rooms\": {}, \"mean_wait_ms\": {:.4} }}{sep}\n",
                m.store_hit_ratio,
                m.fps_p50,
                m.fps_p99,
                mm.arrivals,
                mm.placed,
                mm.queued,
                mm.overflow_rooms,
                mm.mean_wait_ms,
            ));
        }
        out.push_str("  }");
    }
    // Full mergeable histograms when the run was traced: bucket counts
    // sum across runs, so later tooling can recompute any percentile
    // over combined benchmark archives, not just read the quantiles we
    // happened to print.
    if let Some(t) = &metrics.telemetry {
        out.push_str(",\n  \"telemetry\": {\n");
        out.push_str(&format!(
            "    \"frames\": {},\n    \"over_budget\": {},\n    \"frame_hist\": {},\n",
            t.frames,
            t.over_budget,
            t.frame_hist.to_sparse_json()
        ));
        out.push_str("    \"stage_hists\": {\n");
        for (i, (stage, hist)) in Stage::ATTRIBUTED
            .iter()
            .zip(t.stage_hists.iter())
            .enumerate()
        {
            let sep = if i + 1 == Stage::ATTRIBUTED.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "      \"{}\": {}{sep}\n",
                stage.name(),
                hist.to_sparse_json()
            ));
        }
        out.push_str("    }\n  }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_report_has_both_modes() {
        let config = ExpConfig::quick();
        let (report, shared, isolated) =
            fleet(&config, 2, 2, NetScenario::None, PredictorKind::None);
        assert_eq!(report.len(), 2);
        assert_eq!(report.cell(0, 0), Some("shared"));
        assert_eq!(report.cell(1, 0), Some("isolated"));
        assert_eq!(shared.rooms.len(), 2);
        assert_eq!(isolated.rooms.len(), 2);
        // Lossless runs print no FI lines.
        assert!(!format!("{report}").contains("fi shared"));
    }

    #[test]
    fn fleet_experiment_is_deterministic() {
        let config = ExpConfig::quick();
        let a = fleet(&config, 2, 2, NetScenario::None, PredictorKind::None).0;
        let b = fleet(&config, 2, 2, NetScenario::None, PredictorKind::None).0;
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn traced_fleet_exports_valid_chrome_trace() {
        let config = ExpConfig::quick();
        let (report, shared, _, trace_json) =
            fleet_traced(&config, 1, 2, NetScenario::None, PredictorKind::None, true);
        let json = trace_json.expect("traced run exports JSON");
        let check = coterie_telemetry::validate_chrome_trace(&json).expect("trace validates");
        assert!(check.events > 0);
        assert!(check.frames > 0);
        assert!(check.max_rel_err <= 0.01, "err {}", check.max_rel_err);
        let summary = shared.metrics.telemetry.expect("traced metrics summarize");
        assert!(summary.frames > 0);
        assert!(format!("{report}").contains("telemetry shared"));
        // The comparison table itself is unchanged by tracing.
        let untraced = fleet(&config, 1, 2, NetScenario::None, PredictorKind::None).0;
        let strip_notes = |r: String| -> String {
            r.lines()
                .filter(|l| !l.contains("telemetry shared"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip_notes(format!("{report}")),
            strip_notes(format!("{untraced}"))
        );
    }

    #[test]
    fn fleet_bench_json_is_well_formed() {
        let config = ExpConfig::quick();
        let (_, shared, _) = fleet(&config, 1, 2, NetScenario::None, PredictorKind::None);
        let json = fleet_bench_json(&shared.metrics, 1, 2, NetScenario::None, None, None, None);
        let doc = coterie_telemetry::parse_json(&json).expect("valid JSON");
        let fleet = doc.get("fleet").expect("fleet object");
        for key in [
            "fps_p50",
            "fps_p95",
            "fps_p99",
            "store_hit_ratio",
            "egress_mbps",
        ] {
            let v = fleet.get(key).and_then(|v| v.as_f64()).expect(key);
            assert!(v.is_finite(), "{key} = {v}");
        }
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("rooms"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn predictor_fleet_reports_speculation_and_json_delta() {
        let config = ExpConfig::quick();
        let (report, vpm, _) = fleet(&config, 2, 2, NetScenario::None, PredictorKind::Vpm);
        let text = format!("{report}");
        assert!(text.contains("speculation policy 'vpm'"), "got: {text}");
        assert!(text.contains("speculation shared"), "got: {text}");
        assert!(vpm.metrics.spec_rendered > 0);

        let (_, none, _) = fleet(&config, 2, 2, NetScenario::None, PredictorKind::None);
        let json = fleet_bench_json(
            &vpm.metrics,
            2,
            2,
            NetScenario::None,
            Some(&none.metrics),
            None,
            None,
        );
        let doc = coterie_telemetry::parse_json(&json).expect("valid JSON");
        let spec = doc.get("speculation").expect("speculation object");
        for key in [
            "rendered",
            "used",
            "hits",
            "rejected",
            "precision",
            "recall",
        ] {
            let v = spec.get(key).and_then(|v| v.as_f64()).expect(key);
            assert!(v.is_finite(), "{key} = {v}");
        }
        let delta = spec
            .get("hit_ratio_delta")
            .and_then(|v| v.as_f64())
            .expect("delta vs baseline");
        assert!(delta.is_finite());
        // The predictor-less document is unchanged: no speculation key.
        let base_json = fleet_bench_json(&none.metrics, 2, 2, NetScenario::None, None, None, None);
        assert!(!base_json.contains("speculation"), "got: {base_json}");
    }

    #[test]
    fn sharded_fleet_experiment_reports_uplift() {
        let config = ExpConfig::quick();
        let (report, sharded, isolated, _) = fleet_sharded_traced(
            &config,
            4,
            2,
            4,
            StoreBackend::Sharded,
            NetScenario::None,
            PredictorKind::None,
            false,
        );
        assert_eq!(report.cell(0, 0), Some("sharded"));
        assert_eq!(report.cell(1, 0), Some("isolated"));
        let text = format!("{report}");
        assert!(text.contains("exchange:"), "exchange note printed: {text}");
        let s = sharded.metrics.sharding.expect("sharded metrics");
        assert_eq!(s.shards, 4);
        assert!(s.wire_msgs > 0);
        let iso = isolated.expect("comparison baseline ran");
        assert!(
            sharded.metrics.store_hit_ratio > iso.metrics.store_hit_ratio,
            "sharded {} vs isolated {}",
            sharded.metrics.store_hit_ratio,
            iso.metrics.store_hit_ratio
        );
        // Deterministic: same inputs reproduce the report byte for byte.
        let again = fleet_sharded_traced(
            &config,
            4,
            2,
            4,
            StoreBackend::Sharded,
            NetScenario::None,
            PredictorKind::None,
            false,
        )
        .0;
        assert_eq!(format!("{report}"), format!("{again}"));
    }

    #[test]
    fn local_backend_runs_isolated_workers_only() {
        let config = ExpConfig::quick();
        let (report, primary, isolated, _) = fleet_sharded_traced(
            &config,
            2,
            2,
            2,
            StoreBackend::Local,
            NetScenario::None,
            PredictorKind::None,
            false,
        );
        assert_eq!(report.len(), 1);
        assert_eq!(report.cell(0, 0), Some("local"));
        assert!(isolated.is_none());
        assert!(primary.metrics.sharding.is_none());
    }

    #[test]
    fn scaling_curve_lands_in_bench_json() {
        let config = ExpConfig::quick();
        let points = fleet_scaling(&config, 2, 2, &[1, 2]);
        assert_eq!(points.len(), 2);
        // One worker: both wirings are the same shared store.
        assert_eq!(points[0].hit_ratio, points[0].isolated_hit_ratio);
        assert_eq!(points[0].exchange_bytes, 0);
        assert!(points[1].exchange_bytes > 0);

        let (_, shared, _) = fleet(&config, 1, 2, NetScenario::None, PredictorKind::None);
        let json = fleet_bench_json(
            &shared.metrics,
            1,
            2,
            NetScenario::None,
            None,
            Some(&points),
            None,
        );
        let doc = coterie_telemetry::parse_json(&json).expect("valid JSON");
        let curve = doc
            .get("sharding")
            .and_then(|s| s.get("curve"))
            .and_then(|c| c.as_array())
            .expect("sharding curve");
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[1].get("shards").and_then(|v| v.as_f64()), Some(2.0));
        for key in [
            "hit_ratio",
            "gpu_hours",
            "isolated_hit_ratio",
            "isolated_gpu_hours",
            "exchange_bytes",
        ] {
            let v = curve[1].get(key).and_then(|v| v.as_f64()).expect(key);
            assert!(v.is_finite(), "{key} = {v}");
        }
        // Without the curve the document has no sharding key.
        let base = fleet_bench_json(&shared.metrics, 1, 2, NetScenario::None, None, None, None);
        assert!(!base.contains("sharding"), "got: {base}");
    }

    #[test]
    fn matchmaking_experiment_compares_policies() {
        let config = ExpConfig::quick();
        let (report, first_fit, affinity) = matchmaking(
            &config,
            2,
            2,
            ChurnScenario::Steady,
            PlacementPolicy::FirstFit,
        );
        // The lead policy heads the table.
        assert_eq!(report.cell(0, 0), Some("first-fit"));
        assert_eq!(report.cell(1, 0), Some("affinity"));
        let ff = first_fit.metrics.matchmaking.expect("first-fit metrics");
        let aff = affinity.metrics.matchmaking.expect("affinity metrics");
        assert_eq!(ff.scenario, ChurnScenario::Steady);
        // Both policies place the same arrival trace.
        assert_eq!(ff.arrivals, aff.arrivals);
        assert!(ff.arrivals > 0);
        assert_eq!(ff.placed, ff.arrivals);
        assert_eq!(aff.placed, aff.arrivals);
        let text = format!("{report}");
        assert!(text.contains("churn 'steady'"), "got: {text}");
        // Deterministic: same inputs reproduce the report byte for byte.
        let again = matchmaking(
            &config,
            2,
            2,
            ChurnScenario::Steady,
            PlacementPolicy::FirstFit,
        )
        .0;
        assert_eq!(format!("{report}"), format!("{again}"));
        // Flipping the lead flips the row order, nothing else.
        let flipped = matchmaking(
            &config,
            2,
            2,
            ChurnScenario::Steady,
            PlacementPolicy::Affinity,
        )
        .0;
        assert_eq!(flipped.cell(0, 0), Some("affinity"));
        assert_eq!(flipped.cell(1, 0), Some("first-fit"));
    }

    #[test]
    fn matchmaking_section_lands_in_bench_json() {
        let config = ExpConfig::quick();
        let (_, first_fit, affinity) = matchmaking(
            &config,
            2,
            2,
            ChurnScenario::Flash,
            PlacementPolicy::FirstFit,
        );
        let json = fleet_bench_json(
            &first_fit.metrics,
            2,
            2,
            NetScenario::None,
            None,
            None,
            Some((&first_fit.metrics, &affinity.metrics)),
        );
        let doc = coterie_telemetry::parse_json(&json).expect("valid JSON");
        let mm = doc.get("matchmaking").expect("matchmaking object");
        assert_eq!(
            mm.get("scenario").and_then(|v| v.as_str()),
            Some("flash"),
            "got: {json}"
        );
        for key in ["first_fit", "affinity"] {
            let policy = mm.get(key).expect(key);
            for field in [
                "store_hit_ratio",
                "fps_p50",
                "fps_p99",
                "arrivals",
                "placed",
                "queued",
                "overflow_rooms",
                "mean_wait_ms",
            ] {
                let v = policy.get(field).and_then(|v| v.as_f64()).expect(field);
                assert!(v.is_finite(), "{key}.{field} = {v}");
            }
        }
        // Without the comparison the document has no matchmaking key.
        let base = fleet_bench_json(
            &first_fit.metrics,
            2,
            2,
            NetScenario::None,
            None,
            None,
            None,
        );
        assert!(!base.contains("matchmaking"), "got: {base}");
    }

    #[test]
    fn lossy_fleet_experiment_reports_recovery() {
        let config = ExpConfig::quick();
        let (report, shared, _) = fleet(&config, 2, 2, NetScenario::BurstLoss, PredictorKind::None);
        assert!(shared.metrics.fi_retries > 0);
        assert!(shared.metrics.fi_stale_frames > 0);
        let text = format!("{report}");
        assert!(text.contains("burst-loss"), "scenario named in the notes");
        assert!(text.contains("fi shared"), "FI accounting printed");
        assert!(text.contains("fi isolated"));
    }
}
