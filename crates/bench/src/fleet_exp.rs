//! Fleet-hosting experiment: the cross-session frame store.
//!
//! The paper provisions one render server per session. A hosting
//! provider runs hundreds of rooms of the same handful of games, which
//! raises a question the paper leaves open: do the three similarity
//! criteria still pay off when the cache is shared *across* sessions?
//! This experiment runs the same fleet twice — once with one shared
//! frame store, once with an equal total byte budget split into
//! isolated per-room stores — and compares tail FPS, store hit ratio,
//! shipped bandwidth and pre-render GPU cost.

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_serve::{Fleet, FleetConfig, FleetReport};
use coterie_world::GameId;

/// Builds the fleet configuration for the experiment.
///
/// Rooms cycle through two roam-family games so the store also
/// demonstrates per-game isolation; only rooms of the same game share
/// frames.
pub fn fleet_config(config: &ExpConfig, rooms: usize, players: usize, shared: bool) -> FleetConfig {
    FleetConfig {
        rooms: rooms.max(1),
        players: players.max(1),
        games: vec![GameId::VikingVillage, GameId::Fps],
        duration_s: if config.quick { 4.0 } else { 10.0 },
        seed: config.seed,
        shared_store: shared,
        size_samples: if config.quick { 4 } else { 8 },
        ..FleetConfig::default()
    }
}

/// Runs the shared-vs-isolated comparison and renders the report.
///
/// The run is deterministic: the same `ExpConfig` seed and room/player
/// counts reproduce the table byte for byte.
pub fn fleet(
    config: &ExpConfig,
    rooms: usize,
    players: usize,
) -> (Report, FleetReport, FleetReport) {
    let shared = Fleet::new(fleet_config(config, rooms, players, true)).run();
    let isolated = Fleet::new(fleet_config(config, rooms, players, false)).run();

    let mut report = Report::new("Fleet: shared vs isolated cross-session frame store");
    report.note(format!(
        "{} rooms x {} players, seed {}, games Viking Village + FPS",
        rooms.max(1),
        players.max(1),
        config.seed
    ));
    report.note("one store shared by all rooms of a game vs the same byte budget split per room");
    report.headers([
        "store",
        "fps p50",
        "fps p95",
        "fps p99",
        "hit ratio",
        "egress Mbps",
        "GPU-hours",
        "peak degC",
        "degraded",
    ]);
    for (label, run) in [("shared", &shared), ("isolated", &isolated)] {
        let m = &run.metrics;
        report.row([
            label.to_string(),
            f(m.fps_p50, 2),
            f(m.fps_p95, 2),
            f(m.fps_p99, 2),
            pct(m.store_hit_ratio),
            f(m.egress_mbps, 2),
            f(m.prerender_gpu_hours, 6),
            f(m.peak_temperature_c, 2),
            format!("{}", m.degraded_rooms),
        ]);
    }
    (report, shared, isolated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_report_has_both_modes() {
        let config = ExpConfig::quick();
        let (report, shared, isolated) = fleet(&config, 2, 2);
        assert_eq!(report.len(), 2);
        assert_eq!(report.cell(0, 0), Some("shared"));
        assert_eq!(report.cell(1, 0), Some("isolated"));
        assert_eq!(shared.rooms.len(), 2);
        assert_eq!(isolated.rooms.len(), 2);
    }

    #[test]
    fn fleet_experiment_is_deterministic() {
        let config = ExpConfig::quick();
        let a = fleet(&config, 2, 2).0;
        let b = fleet(&config, 2, 2).0;
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
