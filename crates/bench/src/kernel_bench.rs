//! Dependency-free timing of the hot kernels (render, SSIM, codec, DCT,
//! quantize) with a machine-readable JSON report.
//!
//! Criterion gives interactive numbers; this module gives the *committed*
//! perf trajectory: `experiments bench-json` writes `BENCH_render.json`
//! with the median nanoseconds per kernel so every PR can be compared to
//! the last. The binary cannot use criterion (a dev-dependency), so this
//! is a deliberately simple warmup + median-of-samples harness.
//!
//! Besides the default-dispatch `kernels` section (whose original keys
//! stay byte-compatible across PRs), the report carries a `simd` section
//! with the same kernels timed at every dispatch level the CPU supports —
//! the scalar entries are the pre-SIMD baselines (the kernels are
//! bit-identical across levels, so scalar timing is the old code path's
//! timing), making the AVX2-vs-scalar speedup auditable from the
//! committed file alone.

use coterie_codec::{Encoder, Quality};
use coterie_frame::{ssim_with_simd, LumaFrame, SsimOptions};
use coterie_parallel::simd::{self, SimdLevel};
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_world::{GameId, GameSpec, Vec2};
use std::time::Instant;

/// One timed kernel: median wall-clock nanoseconds per call.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name as it appears in the JSON report.
    pub name: String,
    /// Median nanoseconds per call over all samples.
    pub median_ns: u64,
    /// Number of timed samples (after warmup).
    pub samples: usize,
}

/// Per-dispatch-level timings: `level` is the [`SimdLevel`] name.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdTimings {
    /// Dispatch level name (`scalar`, `sse2`, `avx2`).
    pub level: String,
    /// Kernel timings at that level.
    pub timings: Vec<KernelTiming>,
}

/// Blocks per sample for the 8×8 block kernels (`dct_8x8`,
/// `quantize_8x8`): a single block transform is below timer resolution,
/// so each sample times this many back-to-back blocks.
const BLOCK_BATCH: usize = 4096;

/// Times `f`, returning the median ns per call over `samples` runs.
fn time_kernel<R>(samples: usize, mut f: impl FnMut() -> R) -> (u64, usize) {
    // Warmup: populate caches (scene index, trig tables) off the clock.
    std::hint::black_box(f());
    let mut runs: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    (runs[runs.len() / 2], samples)
}

/// The fixed bench workload: a VikingVillage viewpoint pair at the
/// default 256×128 options.
struct Workload {
    scene: coterie_world::Scene,
    eye: coterie_world::Vec3,
    /// Whole-BE frame from `eye`.
    frame_a: LumaFrame,
    /// Whole-BE frame from a 0.4 m-shifted viewpoint.
    frame_b: LumaFrame,
}

fn workload() -> Workload {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(7);
    let renderer = Renderer::new(RenderOptions::default());
    let eye = scene.eye(scene.bounds().center());
    let eye_b = scene.eye(scene.bounds().center() + Vec2::new(0.4, 0.0));
    let frame_a = renderer
        .render_panorama(&scene, eye, RenderFilter::All)
        .frame;
    let frame_b = renderer
        .render_panorama(&scene, eye_b, RenderFilter::All)
        .frame;
    Workload {
        scene,
        eye,
        frame_a,
        frame_b,
    }
}

/// Times one dispatch level's kernels against the shared workload.
fn run_level(samples: usize, wl: &Workload, level: SimdLevel) -> Vec<KernelTiming> {
    let cutoff = 10.0;
    let renderer = Renderer::new(RenderOptions::default()).with_simd_level(level);
    let encoder = Encoder::with_simd_level(Quality::default(), level);
    let encoded = encoder.encode(&wl.frame_a);
    let dct = simd::Dct8x8::new();
    // A mid-texture block and the default-quality table for the block
    // kernels.
    let mut block = [0.0f32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = wl.frame_a.data()[i * 37 % wl.frame_a.data().len()] - 0.5;
    }
    let mut coeffs = [0.0f32; 64];
    dct.forward(&block, &mut coeffs, level);
    let qtable: [f32; 64] = std::array::from_fn(|i| 1.0 + (i as f32) * 0.25);
    let opts = SsimOptions::default();

    let mut out = Vec::new();
    let mut push = |name: &str, (median_ns, samples): (u64, usize)| {
        out.push(KernelTiming {
            name: name.to_string(),
            median_ns,
            samples,
        });
    };

    push(
        "render_all_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&wl.scene, wl.eye, RenderFilter::All)
        }),
    );
    push(
        "render_near_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&wl.scene, wl.eye, RenderFilter::NearOnly { cutoff })
        }),
    );
    push(
        "render_far_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&wl.scene, wl.eye, RenderFilter::FarOnly { cutoff })
        }),
    );
    push(
        "ssim_default_256x128",
        time_kernel(samples, || {
            ssim_with_simd(&wl.frame_a, &wl.frame_b, &opts, level)
        }),
    );
    push(
        "codec_encode_256x128",
        time_kernel(samples, || encoder.encode(&wl.frame_a)),
    );
    push(
        "codec_decode_256x128",
        time_kernel(samples, || encoder.decode(&encoded).unwrap()),
    );
    push(
        "dct_8x8",
        time_kernel(samples, || {
            let mut c = [0.0f32; 64];
            for _ in 0..BLOCK_BATCH {
                dct.forward(std::hint::black_box(&block), &mut c, level);
            }
            c
        }),
    );
    push(
        "quantize_8x8",
        time_kernel(samples, || {
            let mut q = [0i32; 64];
            for _ in 0..BLOCK_BATCH {
                simd::quantize_8x8(std::hint::black_box(&coeffs), &qtable, &mut q, level);
            }
            q
        }),
    );
    out
}

/// Benchmarks the hot kernels at the acceptance-criteria configuration
/// (default 256×128 options, VikingVillage scene) under the process-wide
/// detected dispatch level.
pub fn run(samples: usize) -> Vec<KernelTiming> {
    run_level(samples, &workload(), simd::detected_level())
}

/// Benchmarks the same kernels at every dispatch level the CPU supports,
/// narrowest (scalar) first.
pub fn run_levels(samples: usize) -> Vec<SimdTimings> {
    let wl = workload();
    simd::available_levels()
        .into_iter()
        .map(|level| SimdTimings {
            level: level.name().to_string(),
            timings: run_level(samples, &wl, level),
        })
        .collect()
}

fn json_entries(timings: &[KernelTiming], indent: &str, s: &mut String) {
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        s.push_str(&format!(
            "{indent}\"{}\": {{ \"median_ns\": {}, \"samples\": {} }}{comma}\n",
            t.name, t.median_ns, t.samples
        ));
    }
}

/// Renders the timings as the committed `BENCH_render.json` document:
/// the default-dispatch `kernels` section (original keys byte-compatible)
/// plus a `simd` section keyed by dispatch level.
pub fn to_json(timings: &[KernelTiming], levels: &[SimdTimings]) -> String {
    let mut s = String::from("{\n  \"kernels\": {\n");
    json_entries(timings, "    ", &mut s);
    s.push_str("  },\n  \"simd\": {\n");
    for (i, lt) in levels.iter().enumerate() {
        let comma = if i + 1 < levels.len() { "," } else { "" };
        s.push_str(&format!("    \"{}\": {{\n", lt.level));
        json_entries(&lt.timings, "      ", &mut s);
        s.push_str(&format!("    }}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_json_well_formed() {
        let wl = workload();
        let timings = run_level(3, &wl, simd::detected_level());
        assert_eq!(timings.len(), 8);
        for t in &timings {
            assert!(t.median_ns > 0, "{} must take measurable time", t.name);
        }
        let levels = vec![SimdTimings {
            level: "scalar".to_string(),
            timings: run_level(3, &wl, SimdLevel::Scalar),
        }];
        let json = to_json(&timings, &levels);
        assert!(json.contains("\"render_all_256x128\""));
        assert!(json.contains("\"ssim_default_256x128\""));
        assert!(json.contains("\"codec_encode_256x128\""));
        assert!(json.contains("\"codec_decode_256x128\""));
        assert!(json.contains("\"dct_8x8\""));
        assert!(json.contains("\"quantize_8x8\""));
        assert!(json.contains("\"simd\""));
        assert!(json.contains("\"scalar\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
