//! Dependency-free timing of the two hot kernels (render, SSIM) with a
//! machine-readable JSON report.
//!
//! Criterion gives interactive numbers; this module gives the *committed*
//! perf trajectory: `experiments bench-json` writes `BENCH_render.json`
//! with the median nanoseconds per kernel so every PR can be compared to
//! the last. The binary cannot use criterion (a dev-dependency), so this
//! is a deliberately simple warmup + median-of-samples harness.

use coterie_frame::ssim;
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_world::{GameId, GameSpec, Vec2};
use std::time::Instant;

/// One timed kernel: median wall-clock nanoseconds per call.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name as it appears in the JSON report.
    pub name: String,
    /// Median nanoseconds per call over all samples.
    pub median_ns: u64,
    /// Number of timed samples (after warmup).
    pub samples: usize,
}

/// Times `f`, returning the median ns per call over `samples` runs.
fn time_kernel<R>(samples: usize, mut f: impl FnMut() -> R) -> (u64, usize) {
    // Warmup: populate caches (scene index, trig tables) off the clock.
    std::hint::black_box(f());
    let mut runs: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    (runs[runs.len() / 2], samples)
}

/// Benchmarks the render + SSIM hot kernels at the acceptance-criteria
/// configuration: default 256×128 options, VikingVillage scene.
pub fn run(samples: usize) -> Vec<KernelTiming> {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(7);
    let renderer = Renderer::new(RenderOptions::default());
    let eye = scene.eye(scene.bounds().center());
    let cutoff = 10.0;

    let mut out = Vec::new();
    let mut push = |name: &str, (median_ns, samples): (u64, usize)| {
        out.push(KernelTiming {
            name: name.to_string(),
            median_ns,
            samples,
        });
    };

    push(
        "render_all_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&scene, eye, RenderFilter::All)
        }),
    );
    push(
        "render_near_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff })
        }),
    );
    push(
        "render_far_256x128",
        time_kernel(samples, || {
            renderer.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff })
        }),
    );

    let a = renderer
        .render_panorama(&scene, eye, RenderFilter::All)
        .frame;
    let eye_b = scene.eye(scene.bounds().center() + Vec2::new(0.4, 0.0));
    let b = renderer
        .render_panorama(&scene, eye_b, RenderFilter::All)
        .frame;
    push(
        "ssim_default_256x128",
        time_kernel(samples, || ssim(&a, &b)),
    );

    out
}

/// Renders the timings as the committed `BENCH_render.json` document.
pub fn to_json(timings: &[KernelTiming]) -> String {
    let mut s = String::from("{\n  \"kernels\": {\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {}, \"samples\": {} }}{comma}\n",
            t.name, t.median_ns, t.samples
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_json_well_formed() {
        let timings = run(3);
        assert_eq!(timings.len(), 4);
        for t in &timings {
            assert!(t.median_ns > 0, "{} must take measurable time", t.name);
        }
        let json = to_json(&timings);
        assert!(json.contains("\"render_all_256x128\""));
        assert!(json.contains("\"ssim_default_256x128\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
