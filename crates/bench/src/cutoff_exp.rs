//! Adaptive-cutoff experiments: Tables 2/3, Figures 6, 7 and 8.

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_device::DeviceProfile;
use coterie_frame::Cdf;
use coterie_world::{GameCatalog, GameId, GameSpec, Trajectory, Vec2};

/// Table 2: the nine-game catalog (genre, FI, type).
pub fn table2(_config: &ExpConfig) -> Report {
    let mut report = Report::new("Table 2: the 6 outdoor and 3 indoor VR apps");
    report.headers(["Game", "Genre", "FI", "Type"]);
    for spec in GameCatalog::all() {
        report.row([
            spec.id.short_name(),
            spec.genre.label(),
            spec.fi_description,
            if spec.indoor { "indoor" } else { "outdoor" },
        ]);
    }
    report
}

/// Per-game output of the Table 3 experiment.
#[derive(Debug, Clone)]
pub struct CutoffTableRow {
    /// Game.
    pub game: GameId,
    /// World dimensions, meters.
    pub dimension: (f64, f64),
    /// Reachable grid points.
    pub grid_points: u64,
    /// Quadtree average depth.
    pub avg_depth: f64,
    /// Quadtree maximum depth.
    pub max_depth: u32,
    /// Number of leaf regions.
    pub leaf_regions: usize,
    /// Modeled offline processing time, hours.
    pub processing_hours: f64,
}

/// Table 3: game stats and the adaptive cutoff scheme's output for all
/// nine games.
pub fn table3(config: &ExpConfig) -> (Report, Vec<CutoffTableRow>) {
    let device = DeviceProfile::pixel2();
    let mut rows = Vec::new();
    for spec in GameCatalog::all() {
        let scene = spec.build_scene(config.seed);
        let map = CutoffMap::compute(&scene, &device, &CutoffConfig::for_spec(&spec), config.seed);
        let stats = map.stats();
        rows.push(CutoffTableRow {
            game: spec.id,
            dimension: (spec.width, spec.depth),
            grid_points: scene.reachable_grid_points(),
            avg_depth: stats.avg_depth,
            max_depth: stats.max_depth,
            leaf_regions: stats.leaf_count,
            processing_hours: map.modeled_processing_hours(),
        });
    }
    let mut report = Report::new("Table 3: adaptive cutoff scheme output");
    report.note("processing time is modeled (0.55 s per cutoff calculation)");
    report.headers([
        "App",
        "Dimension (m^2)",
        "Grid Points (M)",
        "Depth (avg/max)",
        "Leaf Reg.",
        "Proc. (hrs)",
    ]);
    for r in &rows {
        report.row([
            r.game.short_name().to_string(),
            format!("{:.0} x {:.0}", r.dimension.0, r.dimension.1),
            f(r.grid_points as f64 / 1e6, 2),
            format!("{:.2}/{}", r.avg_depth, r.max_depth),
            r.leaf_regions.to_string(),
            f(r.processing_hours, 2),
        ]);
    }
    (report, rows)
}

/// Violation fractions per sampled K for one game.
pub type ViolationSeries = Vec<(usize, f64)>;

/// Figure 6: fraction of trace locations violating Constraint 1 vs the
/// per-region sample count K, for the three testbed games.
pub fn fig6(config: &ExpConfig) -> (Report, Vec<(GameId, ViolationSeries)>) {
    let device = DeviceProfile::pixel2();
    let ks: &[usize] = if config.quick {
        &[2, 10]
    } else {
        &[2, 4, 6, 10, 14, 20]
    };
    let mut results = Vec::new();
    for &game in &GameId::TESTBED {
        let spec = GameSpec::for_game(game);
        let scene = spec.build_scene(config.seed);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, config.trace_s(), config.seed);
        let positions: Vec<Vec2> = (0..600)
            .map(|i| traj.position(config.trace_s() * i as f64 / 600.0))
            .collect();
        let mut series = Vec::new();
        for &k in ks {
            let cfg = CutoffConfig {
                k_samples: k,
                ..CutoffConfig::for_spec(&spec)
            };
            let map = CutoffMap::compute(&scene, &device, &cfg, config.seed);
            let frac = map.violation_fraction(&scene, &device, &cfg, positions.iter().cloned());
            series.push((k, frac));
        }
        results.push((game, series));
    }
    let mut report = Report::new("Figure 6: Constraint-1 violations vs per-region samples K");
    report.note("the paper selects K = 10 (violations < 0.25%)");
    let mut headers = vec!["K".to_string()];
    headers.extend(GameId::TESTBED.iter().map(|g| g.short_name().to_string()));
    report.headers(headers);
    for (i, &k) in ks.iter().enumerate() {
        let mut row = vec![k.to_string()];
        for (_, series) in &results {
            row.push(pct(series[i].1));
        }
        report.row(row);
    }
    (report, results)
}

/// Figure 7: CDF of leaf-region cutoff radii for all nine games.
pub fn fig7(config: &ExpConfig) -> (Report, Vec<(GameId, Cdf)>) {
    let device = DeviceProfile::pixel2();
    let mut results = Vec::new();
    for spec in GameCatalog::all() {
        let scene = spec.build_scene(config.seed);
        let map = CutoffMap::compute(&scene, &device, &CutoffConfig::for_spec(&spec), config.seed);
        let cdf: Cdf = map.leaves().map(|(_, _, c)| c.radius_m).collect();
        results.push((spec.id, cdf));
    }
    let mut report = Report::new("Figure 7: CDF of leaf-region cutoff radii");
    report.headers(["Game", "p10 (m)", "median (m)", "p90 (m)", "max (m)"]);
    for (game, cdf) in &results {
        report.row([
            game.short_name().to_string(),
            f(cdf.quantile(0.1), 1),
            f(cdf.quantile(0.5), 1),
            f(cdf.quantile(0.9), 1),
            f(cdf.quantile(1.0), 1),
        ]);
    }
    // ASCII curves for the two extremes highlighted in the paper's text:
    // Viking (tight radii) vs Racing (wide spread).
    for (game, cdf) in &results {
        if matches!(game, GameId::VikingVillage | GameId::RacingMountain) {
            report.note(format!("{} cutoff-radius CDF:", game.short_name()));
            for line in crate::report::ascii_cdf(cdf, 48, 8).lines() {
                report.note(line.to_string());
            }
        }
    }
    (report, results)
}

/// Figure 8: cutoff radius vs triangle density over Viking Village's
/// leaf regions (the heatmap's underlying scatter).
pub fn fig8(config: &ExpConfig) -> (Report, Vec<(f64, f64)>) {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let device = DeviceProfile::pixel2();
    let map = CutoffMap::compute(&scene, &device, &CutoffConfig::for_spec(&spec), config.seed);
    let points: Vec<(f64, f64)> = map
        .leaves()
        .map(|(_, rect, c)| (scene.triangle_density(&rect), c.radius_m))
        .collect();
    // Bucket by radius to show the density correlation compactly.
    let mut report = Report::new("Figure 8: cutoff radius vs triangle density (Viking leaves)");
    report.note("higher object density => smaller generated cutoff radius");
    report.headers(["radius bucket (m)", "leaves", "mean density (tris/m^2)"]);
    let buckets = [
        (0.0, 4.0),
        (4.0, 8.0),
        (8.0, 12.0),
        (12.0, 20.0),
        (20.0, 200.0),
    ];
    for (lo, hi) in buckets {
        let in_bucket: Vec<f64> = points
            .iter()
            .filter(|(_, r)| *r >= lo && *r < hi)
            .map(|(d, _)| *d)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mean = in_bucket.iter().sum::<f64>() / in_bucket.len() as f64;
        report.row([
            format!("{lo:.0}-{hi:.0}"),
            in_bucket.len().to_string(),
            f(mean, 0),
        ]);
    }
    (report, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_nine_games() {
        let r = table2(&ExpConfig::quick());
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn fig8_density_anticorrelates_with_radius() {
        let (_, points) = fig8(&ExpConfig::quick());
        assert!(points.len() > 50);
        // Compare mean density of small-radius vs large-radius leaves.
        let small: Vec<f64> = points
            .iter()
            .filter(|(_, r)| *r < 6.0)
            .map(|(d, _)| *d)
            .collect();
        let large: Vec<f64> = points
            .iter()
            .filter(|(_, r)| *r > 12.0)
            .map(|(d, _)| *d)
            .collect();
        assert!(!small.is_empty() && !large.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&small) > mean(&large),
            "small-radius leaves should be denser: {} vs {}",
            mean(&small),
            mean(&large)
        );
    }
}
