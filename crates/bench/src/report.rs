//! Plain-text table/series reports for experiment output.

use std::fmt;

/// A printable experiment report: a title, commentary lines, and an
/// aligned table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Report title (e.g. "Table 5: cache hit ratios").
    pub title: String,
    /// Free-form notes printed before the table.
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Adds a commentary line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// Sets the column headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A cell by (row, column), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for n in &self.notes {
            writeln!(f, "   {n}")?;
        }
        if self.headers.is_empty() && self.rows.is_empty() {
            return Ok(());
        }
        // Column widths over headers + rows.
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
                .collect();
            writeln!(f, "   {}", line.join("  "))?;
            writeln!(
                f,
                "   {}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
            )?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            writeln!(f, "   {}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Renders a CDF as a fixed-size ASCII chart (value on x, cumulative
/// fraction on y), for terminal-readable versions of the paper's CDF
/// figures.
///
/// # Example
///
/// ```
/// use coterie_bench::report::ascii_cdf;
/// use coterie_frame::Cdf;
/// let cdf = Cdf::from_samples((0..100).map(|i| i as f64 / 100.0));
/// let chart = ascii_cdf(&cdf, 40, 10);
/// assert!(chart.lines().count() >= 10);
/// ```
pub fn ascii_cdf(cdf: &coterie_frame::Cdf, width: usize, height: usize) -> String {
    if cdf.is_empty() || width < 8 || height < 2 {
        return String::from("(no samples)\n");
    }
    let lo = cdf.quantile(0.0);
    let hi = cdf.quantile(1.0);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (col, x) in (0..width).map(|c| (c, lo + span * c as f64 / (width - 1) as f64)) {
        let frac = cdf.fraction_at_most(x);
        let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0 |"
        } else if i == height - 1 {
            "0.0 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     {:-<w$}\n     {:<.3}{:>pad$.3}\n",
        "",
        lo,
        hi,
        w = width,
        pad = width.saturating_sub(5)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats() {
        let mut r = Report::new("Table X");
        r.note("a note")
            .headers(["App", "FPS"])
            .row(["Viking", "60"])
            .row(["CTS", "59"]);
        let s = format!("{r}");
        assert!(s.contains("== Table X =="));
        assert!(s.contains("a note"));
        assert!(s.contains("Viking"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(1, 0), Some("CTS"));
        assert_eq!(r.cell(5, 0), None);
    }

    #[test]
    fn empty_report_displays_title_only() {
        let r = Report::new("Empty");
        let s = format!("{r}");
        assert!(s.contains("Empty"));
        assert!(r.is_empty());
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.808), "80.8%");
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn ascii_cdf_renders_monotone_curve() {
        let cdf = coterie_frame::Cdf::from_samples((0..50).map(|i| i as f64));
        let chart = ascii_cdf(&cdf, 30, 8);
        assert!(chart.contains('*'));
        assert!(chart.lines().count() >= 9);
        // Empty CDF degrades gracefully.
        let empty = coterie_frame::Cdf::from_samples(Vec::new());
        assert!(ascii_cdf(&empty, 30, 8).contains("no samples"));
    }

    #[test]
    fn alignment_pads_columns() {
        let mut r = Report::new("T");
        r.headers(["A", "LongHeader"]).row(["x", "1"]);
        let s = format!("{r}");
        assert!(s.contains("LongHeader"));
    }
}
