//! # coterie-bench
//!
//! Experiment harness regenerating every table and figure of the Coterie
//! paper's evaluation (see DESIGN.md §3 for the experiment index).
//!
//! Each `tableN`/`figN` function reproduces one artifact and returns a
//! printable report; the `experiments` binary dispatches on experiment
//! names and `cargo bench` runs the criterion micro-benchmarks.
//!
//! Experiments accept an [`ExpConfig`] whose `quick` mode shrinks
//! durations and sample counts so the full suite can run in CI; the
//! default mode uses paper-scale parameters where feasible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod cache_exp;
pub mod cutoff_exp;
pub mod fleet_exp;
pub mod kernel_bench;
pub mod report;
pub mod similarity;
pub mod system_exp;

pub use report::Report;

use serde::{Deserialize, Serialize};

/// Global experiment scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Shrinks durations/samples for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: false,
            seed: 7,
        }
    }
}

impl ExpConfig {
    /// Quick (CI-scale) configuration.
    pub fn quick() -> Self {
        ExpConfig {
            quick: true,
            seed: 7,
        }
    }

    /// Session duration for system experiments, seconds.
    pub fn session_s(&self) -> f64 {
        if self.quick {
            20.0
        } else {
            120.0
        }
    }

    /// Trace duration for similarity experiments, seconds.
    pub fn trace_s(&self) -> f64 {
        if self.quick {
            20.0
        } else {
            120.0
        }
    }

    /// Frame pairs sampled per game in similarity experiments.
    pub fn pair_samples(&self) -> usize {
        if self.quick {
            24
        } else {
            160
        }
    }
}
