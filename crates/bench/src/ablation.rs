//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! The paper motivates each design decision qualitatively; these
//! experiments quantify them on our substrate:
//!
//! * **Adaptive vs fixed cutoff** — why one global radius is wasteful
//!   (§4.3: "using a single cutoff radius ... will be inefficient").
//! * **Cache capacity** — how small the frame cache can get before the
//!   hit ratio collapses (§5.3 motivates replacement policies with the
//!   Pixel 2's 4 GB).
//! * **Eviction policy** — LRU vs FLF across capacities (§7 "Both LRU
//!   and FLF work effectively").
//! * **Codec quality** — the CRF operating point's bandwidth/quality
//!   trade-off (§5.1 uses CRF 25).

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_codec::{Encoder, Quality};
use coterie_core::cutoff::{max_cutoff_radius, CutoffConfig, CutoffMap};
use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_device::DeviceProfile;
use coterie_frame::{ssim_with, SsimOptions};
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_world::noise::SmallRng;
use coterie_world::{GameId, GameSpec, GridPoint, HeadModel, Scene, TraceSet, Trajectory, Vec2};

/// Ablation 1: adaptive per-region cutoffs vs a single global radius.
///
/// A global radius must be the *minimum* over the world to satisfy
/// Constraint 1 everywhere, which sacrifices far-BE similarity (and thus
/// cache reuse) in sparse regions. We report the mean cutoff radius each
/// approach delivers along a player trace, plus the violation rates.
pub fn ablation_cutoff(config: &ExpConfig) -> Report {
    let device = DeviceProfile::pixel2();
    let mut report = Report::new("Ablation: adaptive vs single global cutoff radius");
    report.note("global radius = min over sampled locations (the only safe choice)");
    report.headers([
        "Game",
        "adaptive mean radius (m)",
        "global radius (m)",
        "adaptive violations",
        "radius gained",
    ]);
    for &game in &GameId::TESTBED {
        let spec = GameSpec::for_game(game);
        let scene = spec.build_scene(config.seed);
        let cutoff_cfg = CutoffConfig::for_spec(&spec);
        let map = CutoffMap::compute(&scene, &device, &cutoff_cfg, config.seed);
        // The safe global radius: min over many random samples.
        let mut rng = SmallRng::new(config.seed ^ 0xAB1);
        let mut global = f64::INFINITY;
        for _ in 0..200 {
            let p = scene.bounds().sample(rng.next_f64(), rng.next_f64());
            global = global.min(max_cutoff_radius(&scene, &device, &cutoff_cfg, p));
        }
        global *= cutoff_cfg.safety_factor;
        // Mean adaptive radius along an actual trace.
        let traces = TraceSet::generate(&scene, &spec, 1, config.trace_s(), 0.2, config.seed);
        let points: Vec<Vec2> = traces
            .player(0)
            .expect("player")
            .points()
            .iter()
            .map(|p| p.position)
            .collect();
        let mean_adaptive: f64 =
            points.iter().map(|&p| map.cutoff_at(p).1).sum::<f64>() / points.len() as f64;
        let violations =
            map.violation_fraction(&scene, &device, &cutoff_cfg, points.iter().cloned());
        report.row([
            game.short_name().to_string(),
            f(mean_adaptive, 1),
            f(global.max(cutoff_cfg.min_radius_m), 1),
            pct(violations),
            format!(
                "{:.1}x",
                mean_adaptive / global.max(cutoff_cfg.min_radius_m)
            ),
        ]);
    }
    report
}

/// Shared replay helper: player 0's hit ratio under one cache
/// configuration with paper-sized (≈250 KB) far-BE frames.
fn hit_ratio_with(
    scene: &Scene,
    map: &CutoffMap,
    traces: &TraceSet,
    cache_config: CacheConfig,
) -> f64 {
    let mut cache: FrameCache<()> = FrameCache::new(cache_config);
    let mut prev: Option<GridPoint> = None;
    for point in traces.player(0).expect("player 0").points() {
        let pos = point.position;
        let gp = scene.grid().snap(pos);
        if prev == Some(gp) {
            continue;
        }
        prev = Some(gp);
        let (leaf, radius, dist_thresh) = map.lookup_params(pos);
        let near_hash = scene.near_set_hash(pos, radius);
        let query = CacheQuery {
            grid: gp,
            pos,
            leaf,
            near_hash,
            dist_thresh,
        };
        if cache.lookup(&query).is_none() {
            cache.insert(
                FrameMeta {
                    grid: gp,
                    pos,
                    leaf,
                    near_hash,
                },
                FrameSource::SelfPrefetch,
                (),
                250_000,
                pos,
            );
        }
    }
    cache.stats().hit_ratio()
}

/// Ablation 2: cache capacity sweep under both eviction policies.
pub fn ablation_cache_capacity(config: &ExpConfig) -> Report {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let map = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        config.seed,
    );
    let traces = TraceSet::generate(
        &scene,
        &spec,
        1,
        config.session_s(),
        1.0 / 60.0,
        config.seed,
    );
    let mut report = Report::new("Ablation: cache capacity vs hit ratio (Viking, 1 player)");
    report.note("frames are ~250 KB; the paper dedicates a slice of the Pixel 2's 4 GB");
    report.headers(["capacity", "LRU hit", "FLF hit"]);
    let capacities: &[(&str, u64)] = &[
        ("1 MB", 1 << 20),
        ("4 MB", 4 << 20),
        ("16 MB", 16 << 20),
        ("64 MB", 64 << 20),
        ("512 MB", 512 << 20),
        ("infinite", u64::MAX),
    ];
    for &(label, capacity_bytes) in capacities {
        let lru = hit_ratio_with(
            &scene,
            &map,
            &traces,
            CacheConfig {
                capacity_bytes,
                policy: EvictionPolicy::Lru,
                version: CacheVersion::V3,
            },
        );
        let flf = hit_ratio_with(
            &scene,
            &map,
            &traces,
            CacheConfig {
                capacity_bytes,
                policy: EvictionPolicy::Flf,
                version: CacheVersion::V3,
            },
        );
        report.row([label.to_string(), pct(lru), pct(flf)]);
    }
    report
}

/// Ablation 3: codec quality (CRF) vs frame size and decoded SSIM.
pub fn ablation_codec_quality(config: &ExpConfig) -> Report {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let renderer = Renderer::new(RenderOptions::fast());
    let map = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        config.seed,
    );
    let pos = scene.bounds().center();
    let (_, radius, _) = map.lookup_params(pos);
    let far = renderer.render_panorama(
        &scene,
        scene.eye(pos),
        RenderFilter::FarOnly { cutoff: radius },
    );
    let mut report = Report::new("Ablation: codec quality operating point");
    report.note("the paper encodes with x264 CRF 25; CRF 18/32 bracket it");
    report.headers(["quality", "encoded bytes", "decoded SSIM"]);
    for q in [Quality::CRF18, Quality::CRF25, Quality::CRF32] {
        let enc = Encoder::new(q);
        let encoded = enc.encode(&far.frame);
        let decoded = enc.decode(&encoded).expect("decodes");
        let s = ssim_with(&far.frame, &decoded, &SsimOptions::fast());
        report.row([format!("{q:?}"), encoded.size_bytes().to_string(), f(s, 4)]);
    }
    report
}

/// Ablation 4: what each of the three cache-lookup criteria contributes.
///
/// Dropping criterion 2 (same leaf) or 3 (same near set) raises the hit
/// ratio but breaks the merge contract; this quantifies how often each
/// criterion is the one that rejects reuse.
pub fn ablation_lookup_criteria(config: &ExpConfig) -> Report {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let map = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        config.seed,
    );
    let traces = TraceSet::generate(
        &scene,
        &spec,
        1,
        config.session_s(),
        1.0 / 60.0,
        config.seed,
    );
    // Track the last fetched frame and classify each subsequent request.
    let mut last: Option<FrameMeta> = None;
    let (mut hits, mut dist_rejects, mut leaf_rejects, mut set_rejects) = (0u64, 0u64, 0u64, 0u64);
    let mut prev: Option<GridPoint> = None;
    for point in traces.player(0).expect("player 0").points() {
        let pos = point.position;
        let gp = scene.grid().snap(pos);
        if prev == Some(gp) {
            continue;
        }
        prev = Some(gp);
        let (leaf, radius, dist_thresh) = map.lookup_params(pos);
        let near_hash = scene.near_set_hash(pos, radius);
        if let Some(cached) = &last {
            let dist_ok = cached.pos.distance(pos) <= dist_thresh;
            let leaf_ok = cached.leaf == leaf;
            let set_ok = cached.near_hash == near_hash;
            if dist_ok && leaf_ok && set_ok {
                hits += 1;
                continue;
            }
            if !dist_ok {
                dist_rejects += 1;
            } else if !leaf_ok {
                leaf_rejects += 1;
            } else {
                set_rejects += 1;
            }
        }
        last = Some(FrameMeta {
            grid: gp,
            pos,
            leaf,
            near_hash,
        });
    }
    let total = (hits + dist_rejects + leaf_rejects + set_rejects).max(1) as f64;
    let mut report = Report::new("Ablation: which lookup criterion ends a frame's reuse (Viking)");
    report.note("classified against the most recently fetched frame");
    report.headers(["outcome", "share"]);
    report.row([
        "reused (all criteria hold)".to_string(),
        pct(hits as f64 / total),
    ]);
    report.row([
        "distance threshold exceeded".to_string(),
        pct(dist_rejects as f64 / total),
    ]);
    report.row([
        "crossed into another leaf".to_string(),
        pct(leaf_rejects as f64 / total),
    ]);
    report.row([
        "near-object set changed".to_string(),
        pct(set_rejects as f64 / total),
    ]);
    report
}

/// Ablation 5: panoramic prefetch vs FoV prefetch under head motion.
///
/// Furion and Coterie prefetch *panoramic* frames precisely because head
/// orientation "is hard to predict" (§2.2). A hypothetical system that
/// prefetched only the FoV the player was facing at request time would
/// show stale content whenever the head turns beyond the frame's margin
/// before display. This quantifies that miss rate as the prefetch lead
/// time grows.
pub fn ablation_panoramic(config: &ExpConfig) -> Report {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let duration = config.trace_s();
    let traj = Trajectory::generate(&scene, &spec, 0, 1, duration, config.seed);
    let head = HeadModel::typical(config.seed, duration);
    // A prefetched FoV frame covers the display FoV plus a guard band:
    // assume the server renders a 140-degree frame for a 100-degree
    // display, giving a +-20-degree margin.
    let margin_rad = 20.0_f64.to_radians();
    let mut report = Report::new("Ablation: panoramic vs FoV prefetch under head motion");
    report.note("a FoV frame misses when the head turns past its +-20 degree guard band");
    report.headers(["prefetch lead", "FoV miss rate", "panorama miss rate"]);
    for lead_s in [0.05, 0.15, 0.5, 1.0, 2.0] {
        let mut misses = 0usize;
        let mut total = 0usize;
        let samples = 400;
        for i in 0..samples {
            let t = duration * i as f64 / samples as f64;
            let deviation = head.max_deviation(&traj, t, lead_s);
            total += 1;
            if deviation > margin_rad {
                misses += 1;
            }
        }
        report.row([
            format!("{:.0} ms", lead_s * 1000.0),
            pct(misses as f64 / total as f64),
            pct(0.0), // panoramas serve any orientation by construction
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_global_radius() {
        let r = ablation_cutoff(&ExpConfig::quick());
        assert_eq!(r.len(), 3);
        for row in 0..r.len() {
            let gained: f64 = r
                .cell(row, 4)
                .expect("gain cell")
                .trim_end_matches('x')
                .parse()
                .expect("number");
            assert!(gained >= 1.0, "adaptive must not lose to global: {gained}");
        }
    }

    #[test]
    fn bigger_cache_never_hurts() {
        let r = ablation_cache_capacity(&ExpConfig::quick());
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().expect("pct");
        let mut last_lru = -1.0;
        for row in 0..r.len() {
            let lru = parse(r.cell(row, 1).expect("lru"));
            assert!(lru >= last_lru - 3.0, "hit ratio should grow with capacity");
            last_lru = lru;
        }
    }

    #[test]
    fn codec_quality_tradeoff_is_monotone() {
        let r = ablation_codec_quality(&ExpConfig::quick());
        let size = |row: usize| r.cell(row, 1).expect("size").parse::<u64>().expect("u64");
        let quality = |row: usize| r.cell(row, 2).expect("ssim").parse::<f64>().expect("f64");
        assert!(
            size(0) > size(1) && size(1) > size(2),
            "sizes must fall with CRF"
        );
        assert!(quality(0) >= quality(1) && quality(1) >= quality(2));
    }

    #[test]
    fn fov_prefetch_misses_grow_with_lead_time() {
        let r = ablation_panoramic(&ExpConfig::quick());
        let parse = |row: usize| {
            r.cell(row, 1)
                .expect("miss cell")
                .trim_end_matches('%')
                .parse::<f64>()
                .expect("pct")
        };
        assert!(parse(0) <= parse(r.len() - 1), "misses must grow with lead");
        assert!(parse(r.len() - 1) > 5.0, "2 s lead should miss often");
        // Panorama column is always zero.
        for row in 0..r.len() {
            assert_eq!(r.cell(row, 2), Some("0.0%"));
        }
    }

    #[test]
    fn criteria_shares_sum_to_one() {
        let r = ablation_lookup_criteria(&ExpConfig::quick());
        let total: f64 = (0..r.len())
            .map(|row| {
                r.cell(row, 1)
                    .expect("share")
                    .trim_end_matches('%')
                    .parse::<f64>()
                    .expect("pct")
            })
            .sum();
        assert!((total - 100.0).abs() < 0.5, "shares sum to {total}");
    }
}
