//! Frame-similarity experiments: Figures 1, 2, 3 and 5.
//!
//! ### Resolution-compensated threshold
//!
//! The paper evaluates SSIM on 3840×2160 panoramas, where a player-step
//! displacement shifts near objects by tens of pixels; at our simulation
//! resolution the same displacement shifts them by a few pixels, so all
//! SSIM values compress toward 1. We therefore read the figures at a
//! compensated quality threshold [`SSIM_THRESHOLD`] (the analogue of the
//! paper's 0.9), chosen so that the *whole-BE* similarity of adjacent
//! frames is low and post-decoupling far-BE similarity is high — the
//! paper's qualitative axes. The CDFs themselves are reported raw.

use crate::report::{f, pct, Report};
use crate::ExpConfig;
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_device::DeviceProfile;
use coterie_frame::{ssim_with, Cdf, SsimOptions};
use coterie_render::{RenderFilter, RenderOptions, Renderer};
use coterie_sim::parallel::par_map;
use coterie_world::{GameCatalog, GameId, GameSpec, Scene, Trajectory, Vec2};

/// Resolution-compensated analogue of the paper's SSIM > 0.9 quality
/// threshold (see module docs).
pub const SSIM_THRESHOLD: f64 = 0.985;

/// Per-game output of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct SimilarityResult {
    /// Which game.
    pub game: GameId,
    /// CDF of whole-BE (pre-decoupling) SSIM values.
    pub before: Cdf,
    /// CDF of far-BE (post-decoupling) SSIM values.
    pub after: Cdf,
}

impl SimilarityResult {
    /// Fraction of pairs above the compensated threshold, before
    /// decoupling.
    pub fn frac_before(&self) -> f64 {
        self.before.fraction_above(SSIM_THRESHOLD)
    }

    /// Fraction of pairs above the compensated threshold, after
    /// decoupling.
    pub fn frac_after(&self) -> f64 {
        self.after.fraction_above(SSIM_THRESHOLD)
    }
}

fn renderer() -> Renderer {
    Renderer::new(RenderOptions::fast())
}

fn scene_and_map(spec: &GameSpec, seed: u64) -> (Scene, CutoffMap) {
    let scene = spec.build_scene(seed);
    let map = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(spec),
        seed,
    );
    (scene, map)
}

/// Figure 1: intra-player similarity of adjacent trajectory frames,
/// before (whole BE) and after (far BE) near/far decoupling, for all
/// nine games.
pub fn fig1(config: &ExpConfig) -> (Report, Vec<SimilarityResult>) {
    let r = renderer();
    let mut results = Vec::new();
    for spec in GameCatalog::all() {
        let (scene, map) = scene_and_map(&spec, config.seed);
        let traj = Trajectory::generate(&scene, &spec, 0, 1, config.trace_s(), config.seed);
        let n = config.pair_samples();
        // Adjacent frames: consecutive display intervals (16.7 ms apart),
        // matching adjacent grid points at each game's grid spacing.
        let dt = 1.0 / 60.0;
        let pairs: Vec<(Vec2, Vec2)> = (0..n)
            .map(|i| {
                let t = config.trace_s() * (i as f64 + 0.5) / n as f64;
                (traj.position(t), traj.position(t + dt))
            })
            .filter(|(a, b)| a != b)
            .collect();
        let sims = par_map(&pairs, |&(a, b)| {
            let whole_a = r.render_panorama(&scene, scene.eye(a), RenderFilter::All);
            let whole_b = r.render_panorama(&scene, scene.eye(b), RenderFilter::All);
            let cutoff = map.cutoff_at(a).1;
            let far_a = r.render_panorama(&scene, scene.eye(a), RenderFilter::FarOnly { cutoff });
            let far_b = r.render_panorama(&scene, scene.eye(b), RenderFilter::FarOnly { cutoff });
            let opts = SsimOptions::fast();
            (
                ssim_with(&whole_a.frame, &whole_b.frame, &opts),
                ssim_with(&far_a.frame, &far_b.frame, &opts),
            )
        });
        results.push(SimilarityResult {
            game: spec.id,
            before: sims.iter().map(|s| s.0).collect(),
            after: sims.iter().map(|s| s.1).collect(),
        });
    }
    let mut report = Report::new("Figure 1: adjacent-frame similarity before/after decoupling");
    report.note(format!(
        "fraction of adjacent BE frame pairs with SSIM > {SSIM_THRESHOLD} \
         (resolution-compensated 0.9)"
    ));
    report.headers([
        "Game",
        "before(whole BE)",
        "after(far BE)",
        "med before",
        "med after",
    ]);
    for res in &results {
        report.row([
            res.game.short_name().to_string(),
            pct(res.frac_before()),
            pct(res.frac_after()),
            f(res.before.quantile(0.5), 4),
            f(res.after.quantile(0.5), 4),
        ]);
    }
    (report, results)
}

/// Figure 2: best-case inter-player similarity before/after decoupling
/// for two players.
pub fn fig2(config: &ExpConfig) -> (Report, Vec<SimilarityResult>) {
    let r = renderer();
    let mut results = Vec::new();
    for spec in GameCatalog::all() {
        let (scene, map) = scene_and_map(&spec, config.seed);
        let duration = config.trace_s();
        let t1 = Trajectory::generate(&scene, &spec, 0, 2, duration, config.seed);
        let t2 = Trajectory::generate(&scene, &spec, 1, 2, duration, config.seed);
        let n = (config.pair_samples() / 2).max(8);
        // Player 2's frame positions (the search pool): the paper
        // searches through *all* the panoramic frames rendered for
        // player 2, so the pool covers the whole trace at frame rate.
        let pool_size = (duration * 30.0) as usize;
        let pool: Vec<Vec2> = (0..pool_size)
            .map(|i| t2.position(duration * i as f64 / pool_size as f64))
            .collect();
        let queries: Vec<Vec2> = (0..n)
            .map(|i| t1.position(duration * (i as f64 + 0.5) / n as f64))
            .collect();
        let sims = par_map(&queries, |&q| {
            // Best-case: the most similar of player 2's frames. The
            // nearest few locations dominate, so we SSIM only those.
            let mut candidates: Vec<Vec2> = pool.clone();
            candidates.sort_by(|a, b| {
                a.distance_sq(q)
                    .partial_cmp(&b.distance_sq(q))
                    .expect("finite")
            });
            let opts = SsimOptions::fast();
            let cutoff = map.cutoff_at(q).1;
            let whole_q = r.render_panorama(&scene, scene.eye(q), RenderFilter::All);
            let far_q = r.render_panorama(&scene, scene.eye(q), RenderFilter::FarOnly { cutoff });
            let mut best_whole = 0.0f64;
            let mut best_far = 0.0f64;
            for c in candidates.iter().take(3) {
                let whole_c = r.render_panorama(&scene, scene.eye(*c), RenderFilter::All);
                let far_c =
                    r.render_panorama(&scene, scene.eye(*c), RenderFilter::FarOnly { cutoff });
                best_whole = best_whole.max(ssim_with(&whole_q.frame, &whole_c.frame, &opts));
                best_far = best_far.max(ssim_with(&far_q.frame, &far_c.frame, &opts));
            }
            (best_whole, best_far)
        });
        results.push(SimilarityResult {
            game: spec.id,
            before: sims.iter().map(|s| s.0).collect(),
            after: sims.iter().map(|s| s.1).collect(),
        });
    }
    let mut report =
        Report::new("Figure 2: best-case inter-player similarity before/after decoupling");
    report.note(format!(
        "fraction of best-case pairs with SSIM > {SSIM_THRESHOLD}"
    ));
    report.headers(["Game", "before(whole BE)", "after(far BE)"]);
    for res in &results {
        report.row([
            res.game.short_name().to_string(),
            pct(res.frac_before()),
            pct(res.frac_after()),
        ]);
    }
    (report, results)
}

/// Figure 3: the near-object effect at one Viking Village location —
/// whole-BE SSIM is low, far-BE SSIM is high for the same displacement.
pub fn fig3(config: &ExpConfig) -> (Report, (f64, f64)) {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let (scene, map) = scene_and_map(&spec, config.seed);
    let r = renderer();
    // Find a spot with dense nearby objects (the paper's example frames
    // contain near market stalls).
    let mut best = (scene.bounds().center(), 0u64);
    for i in 0..200 {
        let p = Vec2::new(10.0 + (i % 20) as f64 * 8.5, 10.0 + (i / 20) as f64 * 11.0);
        if !scene.bounds().contains(p) {
            continue;
        }
        let d = scene.triangles_within(p, 5.0);
        if d > best.1 {
            best = (p, d);
        }
    }
    let a = best.0;
    let b = a + Vec2::new(0.5, 0.0);
    let opts = SsimOptions::fast();
    let whole = {
        let fa = r.render_panorama(&scene, scene.eye(a), RenderFilter::All);
        let fb = r.render_panorama(&scene, scene.eye(b), RenderFilter::All);
        ssim_with(&fa.frame, &fb.frame, &opts)
    };
    let cutoff = map.cutoff_at(a).1.max(6.0);
    let far = {
        let fa = r.render_panorama(&scene, scene.eye(a), RenderFilter::FarOnly { cutoff });
        let fb = r.render_panorama(&scene, scene.eye(b), RenderFilter::FarOnly { cutoff });
        ssim_with(&fa.frame, &fb.frame, &opts)
    };
    let mut report = Report::new("Figure 3: the near-object effect (one Viking location)");
    report.note("paper example: SSIM 0.67 with near objects vs 0.96 without");
    report.headers(["frames", "SSIM"]);
    report.row(["whole BE (with near objects)".to_string(), f(whole, 3)]);
    report.row([format!("far BE (cutoff {cutoff:.1} m)"), f(far, 3)]);
    (report, (whole, far))
}

/// Figure 5: adjacent far-BE similarity vs cutoff radius at four sampled
/// Viking Village locations.
pub fn fig5(config: &ExpConfig) -> (Report, Vec<Vec<(f64, f64)>>) {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(config.seed);
    let r = renderer();
    let mut rng = coterie_world::noise::SmallRng::new(config.seed ^ 0xF15);
    let locations: Vec<Vec2> = (0..4)
        .map(|_| {
            Vec2::new(
                rng.range(20.0, spec.width - 20.0),
                rng.range(20.0, spec.depth - 20.0),
            )
        })
        .collect();
    let cutoffs = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0];
    let displacement = 0.5;
    let opts = SsimOptions::fast();
    let series: Vec<Vec<(f64, f64)>> = locations
        .iter()
        .map(|&p| {
            cutoffs
                .iter()
                .map(|&c| {
                    let a = r.render_panorama(
                        &scene,
                        scene.eye(p),
                        RenderFilter::FarOnly { cutoff: c },
                    );
                    let b = r.render_panorama(
                        &scene,
                        scene.eye(p + Vec2::new(displacement, 0.0)),
                        RenderFilter::FarOnly { cutoff: c },
                    );
                    (c, ssim_with(&a.frame, &b.frame, &opts))
                })
                .collect()
        })
        .collect();
    let mut report = Report::new("Figure 5: far-BE similarity vs cutoff radius (4 locations)");
    report.note(format!(
        "adjacent frames {displacement} m apart; SSIM rises with cutoff"
    ));
    let mut headers = vec!["cutoff (m)".to_string()];
    headers.extend((1..=4).map(|i| format!("loc {i}")));
    report.headers(headers);
    for (i, &c) in cutoffs.iter().enumerate() {
        let mut row = vec![f(c, 1)];
        for s in &series {
            row.push(f(s[i].1, 4));
        }
        report.row(row);
    }
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shows_near_object_effect() {
        let (report, (whole, far)) = fig3(&ExpConfig::quick());
        assert!(!report.is_empty());
        assert!(
            far > whole,
            "far SSIM {far:.3} must exceed whole SSIM {whole:.3}"
        );
    }

    #[test]
    fn fig5_similarity_rises_with_cutoff() {
        let (_, series) = fig5(&ExpConfig::quick());
        assert_eq!(series.len(), 4);
        for s in &series {
            let first = s.first().expect("non-empty").1;
            let last = s.last().expect("non-empty").1;
            assert!(last >= first - 0.01, "series should trend upward: {s:?}");
        }
    }
}
