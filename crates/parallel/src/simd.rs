//! Runtime-dispatched SIMD kernels for the workspace's hot loops.
//!
//! Every kernel here has three implementations — portable scalar,
//! 128-bit SSE2 and 256-bit AVX2 — selected at runtime by a
//! [`SimdLevel`] argument. The scalar path is the *reference
//! semantics*: each SIMD path replicates the scalar per-lane IEEE
//! operation order exactly (same multiply/add association, no FMA
//! contraction), so for every kernel in this module the three levels
//! produce **bit-identical** results. That is what lets the renderer's
//! golden FNV-1a hashes act as the bit-identity referee at every
//! dispatch level, and what keeps `COTERIE_SIMD=scalar` output
//! byte-identical to the historical scalar code.
//!
//! Dispatch policy:
//!
//! * [`cpu_level`] — what the CPU supports (`is_x86_feature_detected!`,
//!   evaluated per call but cheap; SSE2 is the x86-64 baseline).
//! * [`detected_level`] — the process-wide default: the
//!   `COTERIE_SIMD=scalar|sse2|avx2` env override (read once, cached in
//!   a `OnceLock`) clamped to [`cpu_level`]. Unknown values fall back
//!   to auto-detect.
//! * Every public kernel takes an explicit `level` and internally
//!   clamps it to [`cpu_level`], so passing `Avx2` on a non-AVX2 box is
//!   safe (it silently degrades) and tests can exercise all levels
//!   in-process via [`available_levels`] without touching global state.
//!
//! Safety: the `unsafe` intrinsic bodies live in the private `x86`
//! module; each dispatch site's `unsafe` block carries the argument for
//! why the call is sound (CPU support proven by the clamp, in-bounds
//! offsets asserted before dispatch).

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// A SIMD instruction-set tier, ordered from narrowest to widest.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar Rust — the reference semantics for every kernel.
    Scalar,
    /// 128-bit SSE2 paths (baseline on x86-64).
    Sse2,
    /// 256-bit AVX2 paths.
    Avx2,
}

impl SimdLevel {
    /// Lower-case name as accepted by the `COTERIE_SIMD` env var.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// The widest level this CPU supports.
pub fn cpu_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline ISA.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// The process-wide default level: the `COTERIE_SIMD` override (read
/// once) clamped to what the CPU supports.
pub fn detected_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let cap = cpu_level();
        let requested = std::env::var("COTERIE_SIMD").ok().and_then(|v| {
            match v.to_ascii_lowercase().as_str() {
                "scalar" => Some(SimdLevel::Scalar),
                "sse2" => Some(SimdLevel::Sse2),
                "avx2" => Some(SimdLevel::Avx2),
                // Unknown values auto-detect rather than abort: a typo'd
                // override must not change behaviour, only speed.
                _ => None,
            }
        });
        requested.unwrap_or(cap).min(cap)
    })
}

/// Every level the CPU can run, narrowest first (always starts with
/// `Scalar`). Tests iterate this to assert cross-level parity.
pub fn available_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= cpu_level())
        .collect()
}

/// Clamps a requested level to CPU capability; the proof obligation for
/// every `unsafe` dispatch below.
#[inline]
fn clamp_level(level: SimdLevel) -> SimdLevel {
    level.min(cpu_level())
}

// ---------------------------------------------------------------------
// 8×8 DCT-II
// ---------------------------------------------------------------------

/// Orthonormal 8×8 DCT-II with a precomputed basis and its transpose
/// (the layout the SIMD row pass needs), built once per codec instance
/// instead of per block.
#[derive(Clone, Debug)]
pub struct Dct8x8 {
    /// `basis[u][x] = c(u) * cos((2x+1) u π / 16)`.
    basis: [[f32; 8]; 8],
    /// `basis_t[x][u] = basis[u][x]`.
    basis_t: [[f32; 8]; 8],
}

impl Default for Dct8x8 {
    fn default() -> Self {
        Self::new()
    }
}

impl Dct8x8 {
    /// Builds the cosine basis with the orthonormal scaling
    /// `c(0)=sqrt(1/8)`, `c(u)=sqrt(2/8)` (in f64, rounded once to f32 —
    /// the same construction the historical per-block `OnceLock` used).
    pub fn new() -> Self {
        let mut basis = [[0.0f32; 8]; 8];
        for (u, row) in basis.iter_mut().enumerate() {
            let c = if u == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (c * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        let mut basis_t = [[0.0f32; 8]; 8];
        for u in 0..8 {
            for x in 0..8 {
                basis_t[x][u] = basis[u][x];
            }
        }
        Dct8x8 { basis, basis_t }
    }

    /// Forward 2-D DCT of an 8×8 block (row-major).
    pub fn forward(&self, input: &[f32; 64], output: &mut [f32; 64], level: SimdLevel) {
        match clamp_level(level) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: clamp_level caps the request at cpu_level(), which
            // only reports Sse2/Avx2 when the CPU has them; all buffers
            // are fixed-size arrays, so every offset is in bounds.
            SimdLevel::Sse2 => unsafe {
                x86::dct_forward_sse2(&self.basis, &self.basis_t, input, output)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — AVX2 proven present by the clamp.
            SimdLevel::Avx2 => unsafe {
                x86::dct_forward_avx2(&self.basis, &self.basis_t, input, output)
            },
            _ => self.forward_scalar(input, output),
        }
    }

    /// Inverse 2-D DCT of an 8×8 coefficient block (row-major).
    pub fn inverse(&self, coeffs: &[f32; 64], output: &mut [f32; 64], level: SimdLevel) {
        match clamp_level(level) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: level clamped to CPU capability; fixed-size arrays.
            SimdLevel::Sse2 => unsafe { x86::dct_inverse_sse2(&self.basis, coeffs, output) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            SimdLevel::Avx2 => unsafe { x86::dct_inverse_avx2(&self.basis, coeffs, output) },
            _ => self.inverse_scalar(coeffs, output),
        }
    }

    fn forward_scalar(&self, input: &[f32; 64], output: &mut [f32; 64]) {
        let b = &self.basis;
        // Rows first.
        let mut tmp = [0.0f32; 64];
        for y in 0..8 {
            for u in 0..8 {
                let mut acc = 0.0f32;
                for x in 0..8 {
                    acc += input[y * 8 + x] * b[u][x];
                }
                tmp[y * 8 + u] = acc;
            }
        }
        // Then columns.
        for u in 0..8 {
            for v in 0..8 {
                let mut acc = 0.0f32;
                for y in 0..8 {
                    acc += tmp[y * 8 + u] * b[v][y];
                }
                output[v * 8 + u] = acc;
            }
        }
    }

    fn inverse_scalar(&self, coeffs: &[f32; 64], output: &mut [f32; 64]) {
        let b = &self.basis;
        let mut tmp = [0.0f32; 64];
        // Columns first (transpose of forward).
        for u in 0..8 {
            for y in 0..8 {
                let mut acc = 0.0f32;
                for v in 0..8 {
                    acc += coeffs[v * 8 + u] * b[v][y];
                }
                tmp[y * 8 + u] = acc;
            }
        }
        for y in 0..8 {
            for x in 0..8 {
                let mut acc = 0.0f32;
                for u in 0..8 {
                    acc += tmp[y * 8 + u] * b[u][x];
                }
                output[y * 8 + x] = acc;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Quantization, zig-zag
// ---------------------------------------------------------------------

/// Quantizes an 8×8 coefficient block: `out[i] = (coeffs[i] /
/// qtable[i]).round() as i32` (round half away from zero, exactly as
/// `f32::round`). Returns `true` when every output is zero.
///
/// The SIMD paths assume `|coeffs[i] / qtable[i]| < 2^23` and no NaNs —
/// trivially true for DCT output of frames in `[-0.5, 0.5]` divided by
/// the codec's quantization tables (the scalar `as i32` saturating cast
/// and `cvttps` only diverge far outside that domain).
pub fn quantize_8x8(
    coeffs: &[f32; 64],
    qtable: &[f32; 64],
    out: &mut [i32; 64],
    level: SimdLevel,
) -> bool {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; fixed-size arrays.
        SimdLevel::Sse2 => unsafe { x86::quantize_sse2(coeffs, qtable, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::quantize_avx2(coeffs, qtable, out) },
        _ => quantize_scalar(coeffs, qtable, out),
    }
}

fn quantize_scalar(coeffs: &[f32; 64], qtable: &[f32; 64], out: &mut [i32; 64]) -> bool {
    let mut all_zero = true;
    for i in 0..64 {
        out[i] = (coeffs[i] / qtable[i]).round() as i32;
        all_zero &= out[i] == 0;
    }
    all_zero
}

/// Dequantizes an 8×8 block: `out[i] = q[i] as f32 * qtable[i]`.
pub fn dequantize_8x8(q: &[i32; 64], qtable: &[f32; 64], out: &mut [f32; 64], level: SimdLevel) {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; fixed-size arrays.
        SimdLevel::Sse2 => unsafe { x86::dequantize_sse2(q, qtable, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::dequantize_avx2(q, qtable, out) },
        _ => dequantize_scalar(q, qtable, out),
    }
}

fn dequantize_scalar(q: &[i32; 64], qtable: &[f32; 64], out: &mut [f32; 64]) {
    for i in 0..64 {
        out[i] = q[i] as f32 * qtable[i];
    }
}

/// Gathers an 8×8 block into scan order: `out[i] = src[order[i] & 63]`
/// (the mask keeps the gather in bounds for any index table; the
/// codec's zig-zag entries are already in `0..64`, so it is a no-op
/// there). SSE2 has no gather instruction, so that level uses the
/// scalar path.
pub fn zigzag_gather(src: &[i32; 64], order: &[i32; 64], out: &mut [i32; 64], level: SimdLevel) {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; gather indices are
        // masked to 0..64 inside the kernel, so every lane stays inside
        // the fixed-size `src` array.
        SimdLevel::Avx2 => unsafe { x86::zigzag_avx2(src, order, out) },
        _ => zigzag_scalar(src, order, out),
    }
}

fn zigzag_scalar(src: &[i32; 64], order: &[i32; 64], out: &mut [i32; 64]) {
    for i in 0..64 {
        out[i] = src[(order[i] & 63) as usize];
    }
}

// ---------------------------------------------------------------------
// f32 plane ops (codec residual/centering planes)
// ---------------------------------------------------------------------

/// Element-wise `out[i] = a[i] - b[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_planes_f32(a: &[f32], b: &[f32], out: &mut [f32], level: SimdLevel) {
    assert_eq!(a.len(), b.len(), "plane lengths differ");
    assert_eq!(a.len(), out.len(), "output length differs");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths
        // asserted above keep every vector load/store in bounds.
        SimdLevel::Sse2 => unsafe { x86::sub_planes_sse2(a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::sub_planes_avx2(a, b, out) },
        _ => sub_planes_scalar(a, b, out),
    }
}

fn sub_planes_scalar(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Element-wise in-place `dst[i] += src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_planes_f32(dst: &mut [f32], src: &[f32], level: SimdLevel) {
    assert_eq!(dst.len(), src.len(), "plane lengths differ");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths asserted.
        SimdLevel::Sse2 => unsafe { x86::add_planes_sse2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::add_planes_avx2(dst, src) },
        _ => add_planes_scalar(dst, src),
    }
}

fn add_planes_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Element-wise `out[i] = src[i] - s`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_scalar_f32(src: &[f32], s: f32, out: &mut [f32], level: SimdLevel) {
    assert_eq!(src.len(), out.len(), "plane lengths differ");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths asserted.
        SimdLevel::Sse2 => unsafe { x86::sub_scalar_sse2(src, s, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::sub_scalar_avx2(src, s, out) },
        _ => sub_scalar_scalar(src, s, out),
    }
}

fn sub_scalar_scalar(src: &[f32], s: f32, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v - s;
    }
}

/// Element-wise in-place `dst[i] += s`.
pub fn add_scalar_f32(dst: &mut [f32], s: f32, level: SimdLevel) {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; single slice, offsets
        // bounded by its length.
        SimdLevel::Sse2 => unsafe { x86::add_scalar_sse2(dst, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::add_scalar_avx2(dst, s) },
        _ => add_scalar_scalar(dst, s),
    }
}

fn add_scalar_scalar(dst: &mut [f32], s: f32) {
    for d in dst.iter_mut() {
        *d += s;
    }
}

/// Element-wise in-place `dst[i] = dst[i].clamp(0.0, 1.0)`.
///
/// The SIMD paths use compare-and-select rather than min/max, so the
/// edge cases match scalar `f32::clamp` bit-for-bit: `-0.0` is kept
/// (it is not `< 0.0`) and NaN passes through unchanged.
pub fn clamp_unit_f32(dst: &mut [f32], level: SimdLevel) {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; single slice, offsets
        // bounded by its length.
        SimdLevel::Sse2 => unsafe { x86::clamp_unit_sse2(dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::clamp_unit_avx2(dst) },
        _ => clamp_unit_scalar(dst),
    }
}

fn clamp_unit_scalar(dst: &mut [f32]) {
    for d in dst.iter_mut() {
        *d = d.clamp(0.0, 1.0);
    }
}

/// Fused `dst[i] = (dst[i] + s).clamp(0.0, 1.0)` — one pass over the
/// plane instead of [`add_scalar_f32`] followed by [`clamp_unit_f32`]
/// (the decoder's un-center + clamp epilogue; value-for-value identical
/// to the two passes, just half the memory traffic).
pub fn add_clamp_unit_f32(dst: &mut [f32], s: f32, level: SimdLevel) {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; single slice, offsets
        // bounded by its length.
        SimdLevel::Sse2 => unsafe { x86::add_clamp_unit_sse2(dst, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::add_clamp_unit_avx2(dst, s) },
        _ => add_clamp_unit_scalar(dst, s),
    }
}

fn add_clamp_unit_scalar(dst: &mut [f32], s: f32) {
    for d in dst.iter_mut() {
        *d = (*d + s).clamp(0.0, 1.0);
    }
}

/// Returns `true` if any `|src[i]| > thresh` (strict; NaN compares
/// false on every path, matching scalar `f32::abs` + `>`).
pub fn any_abs_above(src: &[f32], thresh: f32, level: SimdLevel) -> bool {
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; single slice.
        SimdLevel::Sse2 => unsafe { x86::any_abs_above_sse2(src, thresh) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::any_abs_above_avx2(src, thresh) },
        _ => any_abs_above_scalar(src, thresh),
    }
}

fn any_abs_above_scalar(src: &[f32], thresh: f32) -> bool {
    src.iter().any(|&v| v.abs() > thresh)
}

// ---------------------------------------------------------------------
// SSIM moment kernels (f64)
// ---------------------------------------------------------------------

/// The five SSIM moment planes for one row of window centers, in
/// structure-of-arrays layout: weighted sums of `a`, `b`, `a²`, `b²`
/// and `ab`.
#[derive(Debug)]
pub struct MomentRowsMut<'a> {
    /// Σ k·a per center.
    pub a: &'a mut [f64],
    /// Σ k·b per center.
    pub b: &'a mut [f64],
    /// Σ (k·a)·a per center.
    pub aa: &'a mut [f64],
    /// Σ (k·b)·b per center.
    pub bb: &'a mut [f64],
    /// Σ (k·a)·b per center.
    pub ab: &'a mut [f64],
}

/// Horizontal SSIM moment pass for one pixel row: for each window
/// center `ci`, accumulates the five Gaussian-weighted moments over
/// `a_row[ci..ci + kernel.len()]` (and likewise `b_row`), replicating
/// the scalar association exactly (each `f32` pixel widened to `f64` —
/// exact — then `k*a`, `(k*a)*a`, `(k*a)*b`, `k*b`, `(k*b)*b`,
/// accumulated in kernel-tap order from 0.0).
///
/// # Panics
///
/// Panics if the five output slices differ in length or the input rows
/// are shorter than `out.a.len() + kernel.len() - 1`.
pub fn ssim_moments_row(
    a_row: &[f32],
    b_row: &[f32],
    kernel: &[f64],
    out: &mut MomentRowsMut<'_>,
    level: SimdLevel,
) {
    let n = out.a.len();
    assert_eq!(out.b.len(), n, "moment plane lengths differ");
    assert_eq!(out.aa.len(), n, "moment plane lengths differ");
    assert_eq!(out.bb.len(), n, "moment plane lengths differ");
    assert_eq!(out.ab.len(), n, "moment plane lengths differ");
    assert!(!kernel.is_empty(), "empty kernel");
    assert!(
        a_row.len() >= n + kernel.len() - 1 && b_row.len() >= n + kernel.len() - 1,
        "input rows too short for {} centers with a {}-tap kernel",
        n,
        kernel.len()
    );
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; the length asserts
        // above guarantee every `ci + ki + lanes` load stays inside the
        // input rows and every store inside the five output planes.
        SimdLevel::Sse2 => unsafe { x86::ssim_moments_sse2(a_row, b_row, kernel, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::ssim_moments_avx2(a_row, b_row, kernel, out) },
        _ => ssim_moments_scalar(a_row, b_row, kernel, out, 0),
    }
}

/// Scalar moment pass from center `start` to the end; also the tail
/// handler for the SIMD paths.
fn ssim_moments_scalar(
    a_row: &[f32],
    b_row: &[f32],
    kernel: &[f64],
    out: &mut MomentRowsMut<'_>,
    start: usize,
) {
    for ci in start..out.a.len() {
        let mut m = [0.0f64; 5];
        for (ki, &kx) in kernel.iter().enumerate() {
            let va = a_row[ci + ki] as f64;
            let vb = b_row[ci + ki] as f64;
            m[0] += kx * va;
            m[1] += kx * vb;
            m[2] += kx * va * va;
            m[3] += kx * vb * vb;
            m[4] += kx * va * vb;
        }
        out.a[ci] = m[0];
        out.b[ci] = m[1];
        out.aa[ci] = m[2];
        out.bb[ci] = m[3];
        out.ab[ci] = m[4];
    }
}

/// Shared-ref view of `klen` consecutive blurred moment rows (the
/// vertical window of one output row), each `stride` centers wide, in
/// the same five-plane layout as [`MomentRowsMut`].
#[derive(Debug)]
pub struct MomentRows<'a> {
    /// Σ k·a rows.
    pub a: &'a [f64],
    /// Σ k·b rows.
    pub b: &'a [f64],
    /// Σ (k·a)·a rows.
    pub aa: &'a [f64],
    /// Σ (k·b)·b rows.
    pub bb: &'a [f64],
    /// Σ (k·a)·b rows.
    pub ab: &'a [f64],
}

/// Vertical SSIM pass fused with the per-window formula: for each
/// center `ci`, combines `kernel.len()` blurred moment rows
/// (`rows.a[ki * stride + ci]`, …) with the vertical kernel — the same
/// register-accumulated tap order as the scalar walk — and evaluates
/// the SSIM term with stabilizers `c1`/`c2` straight out of registers:
///
/// ```text
/// ssim = ((2·μa·μb + c1)(2·cov + c2)) / ((μa² + μb² + c1)(σa² + σb² + c2))
/// ```
///
/// with variances clamped at zero. Every operation replicates the
/// scalar association per lane (division is exactly rounded, and the
/// clamp is compare-and-select), so all dispatch levels produce
/// bit-identical maps.
///
/// # Panics
///
/// Panics if the five row slices differ in length, the kernel is empty,
/// `out` is wider than `stride`, or the rows are shorter than the
/// `kernel.len()` vertical taps need.
pub fn ssim_windows_row(
    rows: &MomentRows<'_>,
    stride: usize,
    kernel: &[f64],
    c1: f64,
    c2: f64,
    out: &mut [f64],
    level: SimdLevel,
) {
    let n = out.len();
    assert_eq!(rows.b.len(), rows.a.len(), "moment row lengths differ");
    assert_eq!(rows.aa.len(), rows.a.len(), "moment row lengths differ");
    assert_eq!(rows.bb.len(), rows.a.len(), "moment row lengths differ");
    assert_eq!(rows.ab.len(), rows.a.len(), "moment row lengths differ");
    assert!(!kernel.is_empty(), "empty kernel");
    assert!(n <= stride, "output row wider than the plane stride");
    assert!(
        rows.a.len() >= (kernel.len() - 1) * stride + n,
        "moment rows too short for {} vertical taps over {} centers",
        kernel.len(),
        n
    );
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; the asserts above
        // guarantee every `ki * stride + ci + lanes` load stays inside
        // the five row slices and every store inside `out`.
        SimdLevel::Sse2 => unsafe { x86::ssim_windows_sse2(rows, stride, kernel, c1, c2, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::ssim_windows_avx2(rows, stride, kernel, c1, c2, out) },
        _ => ssim_windows_scalar(rows, stride, kernel, c1, c2, out, 0),
    }
}

/// Scalar vertical-pass + formula from center `start`; also the tail
/// handler for the SIMD paths.
// Indexing `out[ci]` alongside `ki * stride + ci` keeps the center/tap
// addressing symmetric with the SIMD bodies.
#[allow(clippy::needless_range_loop)]
fn ssim_windows_scalar(
    rows: &MomentRows<'_>,
    stride: usize,
    kernel: &[f64],
    c1: f64,
    c2: f64,
    out: &mut [f64],
    start: usize,
) {
    for ci in start..out.len() {
        let mut m = [0.0f64; 5];
        for (ki, &ky) in kernel.iter().enumerate() {
            let o = ki * stride + ci;
            m[0] += ky * rows.a[o];
            m[1] += ky * rows.b[o];
            m[2] += ky * rows.aa[o];
            m[3] += ky * rows.bb[o];
            m[4] += ky * rows.ab[o];
        }
        let [mu_a, mu_b, aa, bb, ab] = m;
        let var_a = (aa - mu_a * mu_a).max(0.0);
        let var_b = (bb - mu_b * mu_b).max(0.0);
        let cov = ab - mu_a * mu_b;
        let numerator = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
        let denominator = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
        out[ci] = numerator / denominator;
    }
}

// ---------------------------------------------------------------------
// Renderer kernels
// ---------------------------------------------------------------------

/// In-place masked select: `dst[i] = src[i]` wherever `mask[i] != 0`
/// (an exact bitwise select — no arithmetic).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn masked_select_f32(dst: &mut [f32], src: &[f32], mask: &[u8], level: SimdLevel) {
    assert_eq!(dst.len(), src.len(), "plane lengths differ");
    assert_eq!(dst.len(), mask.len(), "mask length differs");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths asserted.
        SimdLevel::Sse2 => unsafe { x86::masked_select_sse2(dst, src, mask) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::masked_select_avx2(dst, src, mask) },
        _ => masked_select_scalar(dst, src, mask),
    }
}

fn masked_select_scalar(dst: &mut [f32], src: &[f32], mask: &[u8]) {
    for ((d, &s), &m) in dst.iter_mut().zip(src).zip(mask) {
        if m != 0 {
            *d = s;
        }
    }
}

/// Per-row constants of the renderer's sphere intersection test. With
/// `cs = col_sin[px]` and `cc = col_cos[px]`, a pixel hits when
/// `((cs*ce)*vx + y_term + (cc*ce)*vz) / dist >= cos_half_width` —
/// exactly the scalar `dir.dot(v) / dist` with its left-associated sum.
#[derive(Debug, Clone, Copy)]
pub struct SphereHit {
    /// `cos(elevation)` of the row.
    pub ce: f64,
    /// Eye→center x component.
    pub vx: f64,
    /// Eye→center z component.
    pub vz: f64,
    /// Precomputed `row_sin[py] * vy` (the row-constant middle term).
    pub y_term: f64,
    /// Eye→center distance.
    pub dist: f64,
    /// Cosine of the object's angular half-width.
    pub cos_half_width: f64,
}

/// Sphere hit test over a contiguous pixel span: `out[i] = 1` when the
/// ray through `(col_sin[i], col_cos[i])` hits, else `0`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sphere_hit_mask(
    col_sin: &[f64],
    col_cos: &[f64],
    p: &SphereHit,
    out: &mut [u8],
    level: SimdLevel,
) {
    assert_eq!(col_sin.len(), out.len(), "span lengths differ");
    assert_eq!(col_cos.len(), out.len(), "span lengths differ");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths asserted.
        SimdLevel::Sse2 => unsafe { x86::sphere_hit_sse2(col_sin, col_cos, p, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::sphere_hit_avx2(col_sin, col_cos, p, out) },
        _ => sphere_hit_scalar(col_sin, col_cos, p, out),
    }
}

fn sphere_hit_scalar(col_sin: &[f64], col_cos: &[f64], p: &SphereHit, out: &mut [u8]) {
    for ((o, &cs), &cc) in out.iter_mut().zip(col_sin).zip(col_cos) {
        let cosang = (cs * p.ce * p.vx + p.y_term + cc * p.ce * p.vz) / p.dist;
        *o = u8::from(cosang >= p.cos_half_width);
    }
}

/// Azimuthal slab hit test over a contiguous pixel span: wraps
/// `azimuth[i] - center_azimuth` into `(-π, π]` and tests
/// `|Δ| <= half_width`. Both inputs lie in `(-π, π]`, so the wrap is at
/// most one ±2π step — which is why the SIMD paths' single masked
/// correction is exactly the scalar `while` loops.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slab_hit_mask(
    azimuth: &[f64],
    center_azimuth: f64,
    half_width: f64,
    out: &mut [u8],
    level: SimdLevel,
) {
    assert_eq!(azimuth.len(), out.len(), "span lengths differ");
    match clamp_level(level) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level clamped to CPU capability; equal lengths asserted.
        SimdLevel::Sse2 => unsafe { x86::slab_hit_sse2(azimuth, center_azimuth, half_width, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::slab_hit_avx2(azimuth, center_azimuth, half_width, out) },
        _ => slab_hit_scalar(azimuth, center_azimuth, half_width, out),
    }
}

fn slab_hit_scalar(azimuth: &[f64], center_azimuth: f64, half_width: f64, out: &mut [u8]) {
    for (o, &az) in out.iter_mut().zip(azimuth) {
        let mut da = az - center_azimuth;
        while da > std::f64::consts::PI {
            da -= std::f64::consts::TAU;
        }
        while da < -std::f64::consts::PI {
            da += std::f64::consts::TAU;
        }
        *o = u8::from(da.abs() <= half_width);
    }
}

/// The `std::arch` kernel bodies. Everything here is `pub(super)`,
/// reachable only through the clamped dispatchers above; each fn's
/// `#[target_feature]` matches the `SimdLevel` arm that calls it.
///
/// Bit-identity argument shared by all kernels: lanes are independent,
/// each lane performs the same IEEE-754 single/double operations in the
/// same order as the scalar reference (multiplies and adds are emitted
/// as separate intrinsics — never FMA — and comparisons are
/// ordered-quiet, matching Rust's `>=`/`>`/`<` on floats), and loads,
/// stores and conversions are value-exact. Per-kernel deviations (e.g.
/// the quantizer's explicit round-half-away sequence) are argued at the
/// fn.
#[cfg(target_arch = "x86_64")]
mod x86 {
    // The DCT loops index `basis[v][y]` with both loop variables on
    // purpose — the code mirrors the Σ notation of the transform, and
    // iterator chains over two index axes would obscure the lane
    // schedule the bit-identity argument depends on.
    #![allow(clippy::needless_range_loop)]

    use super::{MomentRows, MomentRowsMut, SphereHit};
    use std::arch::x86_64::*;

    // ---- 8×8 DCT ----------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dct_forward_avx2(
        basis: &[[f32; 8]; 8],
        basis_t: &[[f32; 8]; 8],
        input: &[f32; 64],
        output: &mut [f32; 64],
    ) {
        // One 8-lane vector is one row of outputs (lanes = u). Stage 1:
        // tmp[y*8+u] = Σ_x input[y*8+x] * basis[u][x], accumulated in x
        // order from 0.0 — the transposed basis makes basis_t[x] the
        // per-x vector over u.
        let mut tmp = [0.0f32; 64];
        for y in 0..8 {
            let mut acc = _mm256_setzero_ps();
            for x in 0..8 {
                let s = _mm256_set1_ps(input[y * 8 + x]);
                let bt = _mm256_loadu_ps(basis_t[x].as_ptr());
                acc = _mm256_add_ps(acc, _mm256_mul_ps(s, bt));
            }
            _mm256_storeu_ps(tmp.as_mut_ptr().add(y * 8), acc);
        }
        // Stage 2: output[v*8+u] = Σ_y tmp[y*8+u] * basis[v][y].
        for v in 0..8 {
            let mut acc = _mm256_setzero_ps();
            for y in 0..8 {
                let t = _mm256_loadu_ps(tmp.as_ptr().add(y * 8));
                let b = _mm256_set1_ps(basis[v][y]);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(t, b));
            }
            _mm256_storeu_ps(output.as_mut_ptr().add(v * 8), acc);
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dct_forward_sse2(
        basis: &[[f32; 8]; 8],
        basis_t: &[[f32; 8]; 8],
        input: &[f32; 64],
        output: &mut [f32; 64],
    ) {
        // Same schedule as the AVX2 version, in two 4-lane halves.
        let mut tmp = [0.0f32; 64];
        for y in 0..8 {
            let mut lo = _mm_setzero_ps();
            let mut hi = _mm_setzero_ps();
            for x in 0..8 {
                let s = _mm_set1_ps(input[y * 8 + x]);
                lo = _mm_add_ps(lo, _mm_mul_ps(s, _mm_loadu_ps(basis_t[x].as_ptr())));
                hi = _mm_add_ps(hi, _mm_mul_ps(s, _mm_loadu_ps(basis_t[x].as_ptr().add(4))));
            }
            _mm_storeu_ps(tmp.as_mut_ptr().add(y * 8), lo);
            _mm_storeu_ps(tmp.as_mut_ptr().add(y * 8 + 4), hi);
        }
        for v in 0..8 {
            let mut lo = _mm_setzero_ps();
            let mut hi = _mm_setzero_ps();
            for y in 0..8 {
                let b = _mm_set1_ps(basis[v][y]);
                lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(tmp.as_ptr().add(y * 8)), b));
                hi = _mm_add_ps(hi, _mm_mul_ps(_mm_loadu_ps(tmp.as_ptr().add(y * 8 + 4)), b));
            }
            _mm_storeu_ps(output.as_mut_ptr().add(v * 8), lo);
            _mm_storeu_ps(output.as_mut_ptr().add(v * 8 + 4), hi);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dct_inverse_avx2(
        basis: &[[f32; 8]; 8],
        coeffs: &[f32; 64],
        output: &mut [f32; 64],
    ) {
        // Stage 1 (columns): tmp[y*8+u] = Σ_v coeffs[v*8+u]*basis[v][y],
        // lanes = u. Stage 2 (rows): output[y*8+x] = Σ_u
        // tmp[y*8+u]*basis[u][x], lanes = x.
        let mut tmp = [0.0f32; 64];
        for y in 0..8 {
            let mut acc = _mm256_setzero_ps();
            for v in 0..8 {
                let c = _mm256_loadu_ps(coeffs.as_ptr().add(v * 8));
                let b = _mm256_set1_ps(basis[v][y]);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(c, b));
            }
            _mm256_storeu_ps(tmp.as_mut_ptr().add(y * 8), acc);
        }
        for y in 0..8 {
            let mut acc = _mm256_setzero_ps();
            for u in 0..8 {
                let t = _mm256_set1_ps(tmp[y * 8 + u]);
                let b = _mm256_loadu_ps(basis[u].as_ptr());
                acc = _mm256_add_ps(acc, _mm256_mul_ps(t, b));
            }
            _mm256_storeu_ps(output.as_mut_ptr().add(y * 8), acc);
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dct_inverse_sse2(
        basis: &[[f32; 8]; 8],
        coeffs: &[f32; 64],
        output: &mut [f32; 64],
    ) {
        let mut tmp = [0.0f32; 64];
        for y in 0..8 {
            let mut lo = _mm_setzero_ps();
            let mut hi = _mm_setzero_ps();
            for v in 0..8 {
                let b = _mm_set1_ps(basis[v][y]);
                lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(coeffs.as_ptr().add(v * 8)), b));
                hi = _mm_add_ps(
                    hi,
                    _mm_mul_ps(_mm_loadu_ps(coeffs.as_ptr().add(v * 8 + 4)), b),
                );
            }
            _mm_storeu_ps(tmp.as_mut_ptr().add(y * 8), lo);
            _mm_storeu_ps(tmp.as_mut_ptr().add(y * 8 + 4), hi);
        }
        for y in 0..8 {
            let mut lo = _mm_setzero_ps();
            let mut hi = _mm_setzero_ps();
            for u in 0..8 {
                let t = _mm_set1_ps(tmp[y * 8 + u]);
                lo = _mm_add_ps(lo, _mm_mul_ps(t, _mm_loadu_ps(basis[u].as_ptr())));
                hi = _mm_add_ps(hi, _mm_mul_ps(t, _mm_loadu_ps(basis[u].as_ptr().add(4))));
            }
            _mm_storeu_ps(output.as_mut_ptr().add(y * 8), lo);
            _mm_storeu_ps(output.as_mut_ptr().add(y * 8 + 4), hi);
        }
    }

    // ---- quantize / dequantize / zig-zag ----------------------------
    //
    // Rounding bit-identity: `f32::round` is round-half-away-from-zero.
    // `v + 0.5` then truncate is NOT equivalent (it fails at e.g.
    // v = 0.5 - 2^-25, where the add rounds up to 0.5 under
    // ties-to-even). Instead: t = trunc(v); diff = v - t is EXACT for
    // |v| < 2^24 (Sterbenz for |t| >= 1, trivial for t = 0), so
    // comparing |diff| >= 0.5 and adding sign(v)·1 reproduces
    // `f32::round` bit-for-bit in the codec's domain.

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_avx2(
        coeffs: &[f32; 64],
        qtable: &[f32; 64],
        out: &mut [i32; 64],
    ) -> bool {
        let half = _mm256_set1_ps(0.5);
        let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let one = _mm256_set1_epi32(1);
        let zero_f = _mm256_setzero_ps();
        let mut nonzero = _mm256_setzero_si256();
        for i in (0..64).step_by(8) {
            let c = _mm256_loadu_ps(coeffs.as_ptr().add(i));
            let q = _mm256_loadu_ps(qtable.as_ptr().add(i));
            let v = _mm256_div_ps(c, q);
            let t = _mm256_cvttps_epi32(v);
            let tf = _mm256_cvtepi32_ps(t);
            let diff = _mm256_sub_ps(v, tf);
            let ad = _mm256_and_ps(diff, absmask);
            let round_up = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(ad, half));
            let adj = _mm256_and_si256(round_up, one);
            let neg = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(v, zero_f));
            // (adj ^ neg) - neg = ±adj: the two's-complement negate of
            // adj exactly where v < 0.
            let signed = _mm256_sub_epi32(_mm256_xor_si256(adj, neg), neg);
            let r = _mm256_add_epi32(t, signed);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), r);
            nonzero = _mm256_or_si256(nonzero, r);
        }
        let z = _mm256_cmpeq_epi32(nonzero, _mm256_setzero_si256());
        _mm256_movemask_epi8(z) == -1
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn quantize_sse2(
        coeffs: &[f32; 64],
        qtable: &[f32; 64],
        out: &mut [i32; 64],
    ) -> bool {
        let half = _mm_set1_ps(0.5);
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
        let one = _mm_set1_epi32(1);
        let zero_f = _mm_setzero_ps();
        let mut nonzero = _mm_setzero_si128();
        for i in (0..64).step_by(4) {
            let c = _mm_loadu_ps(coeffs.as_ptr().add(i));
            let q = _mm_loadu_ps(qtable.as_ptr().add(i));
            let v = _mm_div_ps(c, q);
            let t = _mm_cvttps_epi32(v);
            let tf = _mm_cvtepi32_ps(t);
            let diff = _mm_sub_ps(v, tf);
            let ad = _mm_and_ps(diff, absmask);
            let adj = _mm_and_si128(_mm_castps_si128(_mm_cmpge_ps(ad, half)), one);
            let neg = _mm_castps_si128(_mm_cmplt_ps(v, zero_f));
            let signed = _mm_sub_epi32(_mm_xor_si128(adj, neg), neg);
            let r = _mm_add_epi32(t, signed);
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), r);
            nonzero = _mm_or_si128(nonzero, r);
        }
        let z = _mm_cmpeq_epi32(nonzero, _mm_setzero_si128());
        _mm_movemask_epi8(z) == 0xFFFF
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dequantize_avx2(q: &[i32; 64], qtable: &[f32; 64], out: &mut [f32; 64]) {
        // `i32 as f32` and cvtepi32_ps are both round-to-nearest-even:
        // exact match.
        for i in (0..64).step_by(8) {
            let qi = _mm256_loadu_si256(q.as_ptr().add(i).cast());
            let qt = _mm256_loadu_ps(qtable.as_ptr().add(i));
            _mm256_storeu_ps(
                out.as_mut_ptr().add(i),
                _mm256_mul_ps(_mm256_cvtepi32_ps(qi), qt),
            );
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dequantize_sse2(q: &[i32; 64], qtable: &[f32; 64], out: &mut [f32; 64]) {
        for i in (0..64).step_by(4) {
            let qi = _mm_loadu_si128(q.as_ptr().add(i).cast());
            let qt = _mm_loadu_ps(qtable.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_mul_ps(_mm_cvtepi32_ps(qi), qt));
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn zigzag_avx2(src: &[i32; 64], order: &[i32; 64], out: &mut [i32; 64]) {
        // Indices are masked to 0..64 (matching the scalar `& 63`), so
        // every gathered lane reads inside `src`.
        let m = _mm256_set1_epi32(63);
        for i in (0..64).step_by(8) {
            let idx = _mm256_and_si256(_mm256_loadu_si256(order.as_ptr().add(i).cast()), m);
            let g = _mm256_i32gather_epi32::<4>(src.as_ptr(), idx);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), g);
        }
    }

    // ---- f32 plane ops ----------------------------------------------

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_planes_avx2(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len() & !7;
        for i in (0..n).step_by(8) {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_sub_ps(va, vb));
        }
        super::sub_planes_scalar(&a[n..], &b[n..], &mut out[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sub_planes_sse2(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len() & !3;
        for i in (0..n).step_by(4) {
            let va = _mm_loadu_ps(a.as_ptr().add(i));
            let vb = _mm_loadu_ps(b.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_sub_ps(va, vb));
        }
        super::sub_planes_scalar(&a[n..], &b[n..], &mut out[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_planes_avx2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len() & !7;
        for i in (0..n).step_by(8) {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
        }
        super::add_planes_scalar(&mut dst[n..], &src[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_planes_sse2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let d = _mm_loadu_ps(dst.as_ptr().add(i));
            let s = _mm_loadu_ps(src.as_ptr().add(i));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_add_ps(d, s));
        }
        super::add_planes_scalar(&mut dst[n..], &src[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_scalar_avx2(src: &[f32], s: f32, out: &mut [f32]) {
        let sv = _mm256_set1_ps(s);
        let n = out.len() & !7;
        for i in (0..n).step_by(8) {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_sub_ps(v, sv));
        }
        super::sub_scalar_scalar(&src[n..], s, &mut out[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sub_scalar_sse2(src: &[f32], s: f32, out: &mut [f32]) {
        let sv = _mm_set1_ps(s);
        let n = out.len() & !3;
        for i in (0..n).step_by(4) {
            let v = _mm_loadu_ps(src.as_ptr().add(i));
            _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_sub_ps(v, sv));
        }
        super::sub_scalar_scalar(&src[n..], s, &mut out[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_scalar_avx2(dst: &mut [f32], s: f32) {
        let sv = _mm256_set1_ps(s);
        let n = dst.len() & !7;
        for i in (0..n).step_by(8) {
            let v = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(v, sv));
        }
        super::add_scalar_scalar(&mut dst[n..], s);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_scalar_sse2(dst: &mut [f32], s: f32) {
        let sv = _mm_set1_ps(s);
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let v = _mm_loadu_ps(dst.as_ptr().add(i));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_add_ps(v, sv));
        }
        super::add_scalar_scalar(&mut dst[n..], s);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn clamp_unit_avx2(dst: &mut [f32]) {
        // Compare-and-select (not min/max: those would replace NaN and
        // flip -0.0 to +0.0, unlike scalar `clamp`).
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let n = dst.len() & !7;
        for i in (0..n).step_by(8) {
            let mut v = _mm256_loadu_ps(dst.as_ptr().add(i));
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(v, zero);
            v = _mm256_andnot_ps(lt, v);
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(v, one);
            v = _mm256_or_ps(_mm256_and_ps(gt, one), _mm256_andnot_ps(gt, v));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
        }
        super::clamp_unit_scalar(&mut dst[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn clamp_unit_sse2(dst: &mut [f32]) {
        let zero = _mm_setzero_ps();
        let one = _mm_set1_ps(1.0);
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let mut v = _mm_loadu_ps(dst.as_ptr().add(i));
            let lt = _mm_cmplt_ps(v, zero);
            v = _mm_andnot_ps(lt, v);
            let gt = _mm_cmpgt_ps(v, one);
            v = _mm_or_ps(_mm_and_ps(gt, one), _mm_andnot_ps(gt, v));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), v);
        }
        super::clamp_unit_scalar(&mut dst[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_clamp_unit_avx2(dst: &mut [f32], s: f32) {
        // Add, then the same compare-and-select clamp as
        // `clamp_unit_avx2` — per lane exactly the two-pass sequence.
        let sv = _mm256_set1_ps(s);
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let n = dst.len() & !7;
        for i in (0..n).step_by(8) {
            let mut v = _mm256_add_ps(_mm256_loadu_ps(dst.as_ptr().add(i)), sv);
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(v, zero);
            v = _mm256_andnot_ps(lt, v);
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(v, one);
            v = _mm256_or_ps(_mm256_and_ps(gt, one), _mm256_andnot_ps(gt, v));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
        }
        super::add_clamp_unit_scalar(&mut dst[n..], s);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_clamp_unit_sse2(dst: &mut [f32], s: f32) {
        let sv = _mm_set1_ps(s);
        let zero = _mm_setzero_ps();
        let one = _mm_set1_ps(1.0);
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let mut v = _mm_add_ps(_mm_loadu_ps(dst.as_ptr().add(i)), sv);
            let lt = _mm_cmplt_ps(v, zero);
            v = _mm_andnot_ps(lt, v);
            let gt = _mm_cmpgt_ps(v, one);
            v = _mm_or_ps(_mm_and_ps(gt, one), _mm_andnot_ps(gt, v));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), v);
        }
        super::add_clamp_unit_scalar(&mut dst[n..], s);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn any_abs_above_avx2(src: &[f32], thresh: f32) -> bool {
        let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let t = _mm256_set1_ps(thresh);
        let n = src.len() & !7;
        for i in (0..n).step_by(8) {
            let v = _mm256_and_ps(_mm256_loadu_ps(src.as_ptr().add(i)), absmask);
            // GT_OQ is false on NaN, like the scalar `>`.
            if _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GT_OQ>(v, t)) != 0 {
                return true;
            }
        }
        super::any_abs_above_scalar(&src[n..], thresh)
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn any_abs_above_sse2(src: &[f32], thresh: f32) -> bool {
        let absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
        let t = _mm_set1_ps(thresh);
        let n = src.len() & !3;
        for i in (0..n).step_by(4) {
            let v = _mm_and_ps(_mm_loadu_ps(src.as_ptr().add(i)), absmask);
            if _mm_movemask_ps(_mm_cmpgt_ps(v, t)) != 0 {
                return true;
            }
        }
        super::any_abs_above_scalar(&src[n..], thresh)
    }

    // ---- SSIM moment kernels (f64) ----------------------------------

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ssim_moments_avx2(
        a_row: &[f32],
        b_row: &[f32],
        kernel: &[f64],
        out: &mut MomentRowsMut<'_>,
    ) {
        // Lanes are window centers. Pixels load as f32 and widen in
        // register (cvtps_pd is exact, matching the scalar `as f64`).
        // Per tap: kva = kx*va, kvb = kx*vb; the squared moments are
        // (kx*va)*va etc. — the scalar left-association of
        // `kx * va * va`.
        let n = out.a.len();
        let nv = n & !3;
        for ci in (0..nv).step_by(4) {
            let mut ma = _mm256_setzero_pd();
            let mut mb = _mm256_setzero_pd();
            let mut maa = _mm256_setzero_pd();
            let mut mbb = _mm256_setzero_pd();
            let mut mab = _mm256_setzero_pd();
            for (ki, &k) in kernel.iter().enumerate() {
                let kx = _mm256_set1_pd(k);
                let va = _mm256_cvtps_pd(_mm_loadu_ps(a_row.as_ptr().add(ci + ki)));
                let vb = _mm256_cvtps_pd(_mm_loadu_ps(b_row.as_ptr().add(ci + ki)));
                let kva = _mm256_mul_pd(kx, va);
                let kvb = _mm256_mul_pd(kx, vb);
                ma = _mm256_add_pd(ma, kva);
                mb = _mm256_add_pd(mb, kvb);
                maa = _mm256_add_pd(maa, _mm256_mul_pd(kva, va));
                mbb = _mm256_add_pd(mbb, _mm256_mul_pd(kvb, vb));
                mab = _mm256_add_pd(mab, _mm256_mul_pd(kva, vb));
            }
            _mm256_storeu_pd(out.a.as_mut_ptr().add(ci), ma);
            _mm256_storeu_pd(out.b.as_mut_ptr().add(ci), mb);
            _mm256_storeu_pd(out.aa.as_mut_ptr().add(ci), maa);
            _mm256_storeu_pd(out.bb.as_mut_ptr().add(ci), mbb);
            _mm256_storeu_pd(out.ab.as_mut_ptr().add(ci), mab);
        }
        super::ssim_moments_scalar(a_row, b_row, kernel, out, nv);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn ssim_moments_sse2(
        a_row: &[f32],
        b_row: &[f32],
        kernel: &[f64],
        out: &mut MomentRowsMut<'_>,
    ) {
        let n = out.a.len();
        let nv = n & !1;
        for ci in (0..nv).step_by(2) {
            let mut ma = _mm_setzero_pd();
            let mut mb = _mm_setzero_pd();
            let mut maa = _mm_setzero_pd();
            let mut mbb = _mm_setzero_pd();
            let mut mab = _mm_setzero_pd();
            for (ki, &k) in kernel.iter().enumerate() {
                let kx = _mm_set1_pd(k);
                // cvtps_pd widens the two low f32 lanes (exact, matching
                // the scalar `as f64`); loadl keeps the read to 8 bytes.
                let va = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                    a_row.as_ptr().add(ci + ki).cast(),
                )));
                let vb = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                    b_row.as_ptr().add(ci + ki).cast(),
                )));
                let kva = _mm_mul_pd(kx, va);
                let kvb = _mm_mul_pd(kx, vb);
                ma = _mm_add_pd(ma, kva);
                mb = _mm_add_pd(mb, kvb);
                maa = _mm_add_pd(maa, _mm_mul_pd(kva, va));
                mbb = _mm_add_pd(mbb, _mm_mul_pd(kvb, vb));
                mab = _mm_add_pd(mab, _mm_mul_pd(kva, vb));
            }
            _mm_storeu_pd(out.a.as_mut_ptr().add(ci), ma);
            _mm_storeu_pd(out.b.as_mut_ptr().add(ci), mb);
            _mm_storeu_pd(out.aa.as_mut_ptr().add(ci), maa);
            _mm_storeu_pd(out.bb.as_mut_ptr().add(ci), mbb);
            _mm_storeu_pd(out.ab.as_mut_ptr().add(ci), mab);
        }
        super::ssim_moments_scalar(a_row, b_row, kernel, out, nv);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ssim_windows_avx2(
        rows: &MomentRows<'_>,
        stride: usize,
        kernel: &[f64],
        c1: f64,
        c2: f64,
        out: &mut [f64],
    ) {
        // Lanes are window centers. The vertical taps accumulate in
        // registers exactly like the scalar `m[k] += ky * src[k]`
        // (tap-ascending, plane order a/b/aa/bb/ab), then the formula
        // runs per lane in the scalar association: every add/sub/mul/div
        // is exactly rounded lane-wise, and the variance clamp is a
        // compare-and-select (GT against +0.0, matching
        // `f64::max(0.0)`: negatives and NaN go to +0.0).
        let c1v = _mm256_set1_pd(c1);
        let c2v = _mm256_set1_pd(c2);
        let two = _mm256_set1_pd(2.0);
        let zero = _mm256_setzero_pd();
        let n = out.len();
        let nv = n & !3;
        for ci in (0..nv).step_by(4) {
            let mut ma = _mm256_setzero_pd();
            let mut mb = _mm256_setzero_pd();
            let mut maa = _mm256_setzero_pd();
            let mut mbb = _mm256_setzero_pd();
            let mut mab = _mm256_setzero_pd();
            for (ki, &k) in kernel.iter().enumerate() {
                let ky = _mm256_set1_pd(k);
                let o = ki * stride + ci;
                ma = _mm256_add_pd(
                    ma,
                    _mm256_mul_pd(ky, _mm256_loadu_pd(rows.a.as_ptr().add(o))),
                );
                mb = _mm256_add_pd(
                    mb,
                    _mm256_mul_pd(ky, _mm256_loadu_pd(rows.b.as_ptr().add(o))),
                );
                maa = _mm256_add_pd(
                    maa,
                    _mm256_mul_pd(ky, _mm256_loadu_pd(rows.aa.as_ptr().add(o))),
                );
                mbb = _mm256_add_pd(
                    mbb,
                    _mm256_mul_pd(ky, _mm256_loadu_pd(rows.bb.as_ptr().add(o))),
                );
                mab = _mm256_add_pd(
                    mab,
                    _mm256_mul_pd(ky, _mm256_loadu_pd(rows.ab.as_ptr().add(o))),
                );
            }
            let mu_ab = _mm256_mul_pd(ma, mb);
            let var_a = _mm256_sub_pd(maa, _mm256_mul_pd(ma, ma));
            let var_a = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(var_a, zero), var_a);
            let var_b = _mm256_sub_pd(mbb, _mm256_mul_pd(mb, mb));
            let var_b = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(var_b, zero), var_b);
            let cov = _mm256_sub_pd(mab, mu_ab);
            let num = _mm256_mul_pd(
                _mm256_add_pd(_mm256_mul_pd(_mm256_mul_pd(two, ma), mb), c1v),
                _mm256_add_pd(_mm256_mul_pd(two, cov), c2v),
            );
            let den = _mm256_mul_pd(
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(ma, ma), _mm256_mul_pd(mb, mb)),
                    c1v,
                ),
                _mm256_add_pd(_mm256_add_pd(var_a, var_b), c2v),
            );
            _mm256_storeu_pd(out.as_mut_ptr().add(ci), _mm256_div_pd(num, den));
        }
        super::ssim_windows_scalar(rows, stride, kernel, c1, c2, out, nv);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn ssim_windows_sse2(
        rows: &MomentRows<'_>,
        stride: usize,
        kernel: &[f64],
        c1: f64,
        c2: f64,
        out: &mut [f64],
    ) {
        let c1v = _mm_set1_pd(c1);
        let c2v = _mm_set1_pd(c2);
        let two = _mm_set1_pd(2.0);
        let zero = _mm_setzero_pd();
        let n = out.len();
        let nv = n & !1;
        for ci in (0..nv).step_by(2) {
            let mut ma = _mm_setzero_pd();
            let mut mb = _mm_setzero_pd();
            let mut maa = _mm_setzero_pd();
            let mut mbb = _mm_setzero_pd();
            let mut mab = _mm_setzero_pd();
            for (ki, &k) in kernel.iter().enumerate() {
                let ky = _mm_set1_pd(k);
                let o = ki * stride + ci;
                ma = _mm_add_pd(ma, _mm_mul_pd(ky, _mm_loadu_pd(rows.a.as_ptr().add(o))));
                mb = _mm_add_pd(mb, _mm_mul_pd(ky, _mm_loadu_pd(rows.b.as_ptr().add(o))));
                maa = _mm_add_pd(maa, _mm_mul_pd(ky, _mm_loadu_pd(rows.aa.as_ptr().add(o))));
                mbb = _mm_add_pd(mbb, _mm_mul_pd(ky, _mm_loadu_pd(rows.bb.as_ptr().add(o))));
                mab = _mm_add_pd(mab, _mm_mul_pd(ky, _mm_loadu_pd(rows.ab.as_ptr().add(o))));
            }
            let mu_ab = _mm_mul_pd(ma, mb);
            let var_a = _mm_sub_pd(maa, _mm_mul_pd(ma, ma));
            let var_a = _mm_and_pd(_mm_cmpgt_pd(var_a, zero), var_a);
            let var_b = _mm_sub_pd(mbb, _mm_mul_pd(mb, mb));
            let var_b = _mm_and_pd(_mm_cmpgt_pd(var_b, zero), var_b);
            let cov = _mm_sub_pd(mab, mu_ab);
            let num = _mm_mul_pd(
                _mm_add_pd(_mm_mul_pd(_mm_mul_pd(two, ma), mb), c1v),
                _mm_add_pd(_mm_mul_pd(two, cov), c2v),
            );
            let den = _mm_mul_pd(
                _mm_add_pd(_mm_add_pd(_mm_mul_pd(ma, ma), _mm_mul_pd(mb, mb)), c1v),
                _mm_add_pd(_mm_add_pd(var_a, var_b), c2v),
            );
            _mm_storeu_pd(out.as_mut_ptr().add(ci), _mm_div_pd(num, den));
        }
        super::ssim_windows_scalar(rows, stride, kernel, c1, c2, out, nv);
    }

    // ---- renderer kernels -------------------------------------------

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_select_avx2(dst: &mut [f32], src: &[f32], mask: &[u8]) {
        let zero = _mm256_setzero_si256();
        let n = dst.len() & !7;
        for i in (0..n).step_by(8) {
            let m8 = _mm_loadl_epi64(mask.as_ptr().add(i).cast());
            let m32 = _mm256_cvtepu8_epi32(m8);
            // Zero-extended bytes are all >= 0, so `> 0` == `!= 0`.
            let sel = _mm256_castsi256_ps(_mm256_cmpgt_epi32(m32, zero));
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_blendv_ps(d, s, sel));
        }
        super::masked_select_scalar(&mut dst[n..], &src[n..], &mask[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn masked_select_sse2(dst: &mut [f32], src: &[f32], mask: &[u8]) {
        let zero = _mm_setzero_si128();
        let n = dst.len() & !3;
        for i in (0..n).step_by(4) {
            let raw = mask.as_ptr().add(i).cast::<u32>().read_unaligned();
            let m8 = _mm_cvtsi32_si128(raw as i32);
            let m32 = _mm_unpacklo_epi16(_mm_unpacklo_epi8(m8, zero), zero);
            let sel = _mm_castsi128_ps(_mm_cmpgt_epi32(m32, zero));
            let d = _mm_loadu_ps(dst.as_ptr().add(i));
            let s = _mm_loadu_ps(src.as_ptr().add(i));
            let merged = _mm_or_ps(_mm_and_ps(sel, s), _mm_andnot_ps(sel, d));
            _mm_storeu_ps(dst.as_mut_ptr().add(i), merged);
        }
        super::masked_select_scalar(&mut dst[n..], &src[n..], &mask[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sphere_hit_avx2(
        col_sin: &[f64],
        col_cos: &[f64],
        p: &SphereHit,
        out: &mut [u8],
    ) {
        // AVX2 implies AVX, so the 256-bit double ops are available.
        let ce = _mm256_set1_pd(p.ce);
        let vx = _mm256_set1_pd(p.vx);
        let vz = _mm256_set1_pd(p.vz);
        let yt = _mm256_set1_pd(p.y_term);
        let dist = _mm256_set1_pd(p.dist);
        let chw = _mm256_set1_pd(p.cos_half_width);
        let n = out.len() & !3;
        for i in (0..n).step_by(4) {
            let cs = _mm256_loadu_pd(col_sin.as_ptr().add(i));
            let cc = _mm256_loadu_pd(col_cos.as_ptr().add(i));
            let tx = _mm256_mul_pd(_mm256_mul_pd(cs, ce), vx);
            let tz = _mm256_mul_pd(_mm256_mul_pd(cc, ce), vz);
            let dot = _mm256_add_pd(_mm256_add_pd(tx, yt), tz);
            let cosang = _mm256_div_pd(dot, dist);
            let bits = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(cosang, chw));
            out[i] = (bits & 1) as u8;
            out[i + 1] = ((bits >> 1) & 1) as u8;
            out[i + 2] = ((bits >> 2) & 1) as u8;
            out[i + 3] = ((bits >> 3) & 1) as u8;
        }
        super::sphere_hit_scalar(&col_sin[n..], &col_cos[n..], p, &mut out[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sphere_hit_sse2(
        col_sin: &[f64],
        col_cos: &[f64],
        p: &SphereHit,
        out: &mut [u8],
    ) {
        let ce = _mm_set1_pd(p.ce);
        let vx = _mm_set1_pd(p.vx);
        let vz = _mm_set1_pd(p.vz);
        let yt = _mm_set1_pd(p.y_term);
        let dist = _mm_set1_pd(p.dist);
        let chw = _mm_set1_pd(p.cos_half_width);
        let n = out.len() & !1;
        for i in (0..n).step_by(2) {
            let cs = _mm_loadu_pd(col_sin.as_ptr().add(i));
            let cc = _mm_loadu_pd(col_cos.as_ptr().add(i));
            let tx = _mm_mul_pd(_mm_mul_pd(cs, ce), vx);
            let tz = _mm_mul_pd(_mm_mul_pd(cc, ce), vz);
            let dot = _mm_add_pd(_mm_add_pd(tx, yt), tz);
            let cosang = _mm_div_pd(dot, dist);
            let bits = _mm_movemask_pd(_mm_cmpge_pd(cosang, chw));
            out[i] = (bits & 1) as u8;
            out[i + 1] = ((bits >> 1) & 1) as u8;
        }
        super::sphere_hit_scalar(&col_sin[n..], &col_cos[n..], p, &mut out[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn slab_hit_avx2(
        azimuth: &[f64],
        center_azimuth: f64,
        half_width: f64,
        out: &mut [u8],
    ) {
        // Both azimuths lie in (-π, π], so Δ ∈ (-2π, 2π) and each scalar
        // `while` loop fires at most once; the masked single-step
        // correction below is that exact sequence (AND with the mask
        // yields τ or +0.0, and x ∓ 0.0 / x ± 0.0 leaves the hit
        // decision unchanged: only |Δ| is consumed).
        let c = _mm256_set1_pd(center_azimuth);
        let pi = _mm256_set1_pd(std::f64::consts::PI);
        let npi = _mm256_set1_pd(-std::f64::consts::PI);
        let tau = _mm256_set1_pd(std::f64::consts::TAU);
        let hw = _mm256_set1_pd(half_width);
        let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let n = out.len() & !3;
        for i in (0..n).step_by(4) {
            let mut da = _mm256_sub_pd(_mm256_loadu_pd(azimuth.as_ptr().add(i)), c);
            let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(da, pi);
            da = _mm256_sub_pd(da, _mm256_and_pd(gt, tau));
            let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(da, npi);
            da = _mm256_add_pd(da, _mm256_and_pd(lt, tau));
            let ad = _mm256_and_pd(da, absmask);
            let bits = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(ad, hw));
            out[i] = (bits & 1) as u8;
            out[i + 1] = ((bits >> 1) & 1) as u8;
            out[i + 2] = ((bits >> 2) & 1) as u8;
            out[i + 3] = ((bits >> 3) & 1) as u8;
        }
        super::slab_hit_scalar(&azimuth[n..], center_azimuth, half_width, &mut out[n..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn slab_hit_sse2(
        azimuth: &[f64],
        center_azimuth: f64,
        half_width: f64,
        out: &mut [u8],
    ) {
        let c = _mm_set1_pd(center_azimuth);
        let pi = _mm_set1_pd(std::f64::consts::PI);
        let npi = _mm_set1_pd(-std::f64::consts::PI);
        let tau = _mm_set1_pd(std::f64::consts::TAU);
        let hw = _mm_set1_pd(half_width);
        let absmask = _mm_castsi128_pd(_mm_set1_epi64x(0x7fff_ffff_ffff_ffff));
        let n = out.len() & !1;
        for i in (0..n).step_by(2) {
            let mut da = _mm_sub_pd(_mm_loadu_pd(azimuth.as_ptr().add(i)), c);
            let gt = _mm_cmpgt_pd(da, pi);
            da = _mm_sub_pd(da, _mm_and_pd(gt, tau));
            let lt = _mm_cmplt_pd(da, npi);
            da = _mm_add_pd(da, _mm_and_pd(lt, tau));
            let ad = _mm_and_pd(da, absmask);
            let bits = _mm_movemask_pd(_mm_cmple_pd(ad, hw));
            out[i] = (bits & 1) as u8;
            out[i + 1] = ((bits >> 1) & 1) as u8;
        }
        super::slab_hit_scalar(&azimuth[n..], center_azimuth, half_width, &mut out[n..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f32 stream in roughly [-1, 1].
    fn noise(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    fn noise64(seed: u64, n: usize) -> Vec<f64> {
        noise(seed, n).into_iter().map(f64::from).collect()
    }

    fn simd_levels() -> Vec<SimdLevel> {
        available_levels().into_iter().skip(1).collect()
    }

    #[test]
    fn dispatch_is_clamped_and_ordered() {
        assert!(detected_level() <= cpu_level());
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }

    #[test]
    fn dct_levels_are_bit_identical() {
        let dct = Dct8x8::new();
        let src = noise(1, 64);
        let mut input = [0.0f32; 64];
        input.copy_from_slice(&src);
        let mut want_f = [0.0f32; 64];
        let mut want_i = [0.0f32; 64];
        dct.forward(&input, &mut want_f, SimdLevel::Scalar);
        dct.inverse(&want_f, &mut want_i, SimdLevel::Scalar);
        for level in simd_levels() {
            let mut got_f = [0.0f32; 64];
            let mut got_i = [0.0f32; 64];
            dct.forward(&input, &mut got_f, level);
            dct.inverse(&want_f, &mut got_i, level);
            for i in 0..64 {
                assert_eq!(
                    want_f[i].to_bits(),
                    got_f[i].to_bits(),
                    "fwd {level:?} idx {i}"
                );
                assert_eq!(
                    want_i[i].to_bits(),
                    got_i[i].to_bits(),
                    "inv {level:?} idx {i}"
                );
            }
        }
    }

    #[test]
    fn quantize_levels_are_bit_identical_including_half_ties() {
        // qtable of ones makes v == coeffs, so the tricky rounding
        // inputs are exercised verbatim: exact halves, and the
        // ties-to-even trap value 0.5 - 2^-25 where `v + 0.5` would
        // round the wrong way.
        let mut coeffs = [0.0f32; 64];
        let tricky = [
            0.5f32,
            -0.5,
            2.5,
            -2.5,
            0.5 - f32::EPSILON / 4.0,
            -(0.5 - f32::EPSILON / 4.0),
            0.499_999_97,
            1.499_999_9,
            -127.5,
            127.5,
            0.0,
            -0.0,
        ];
        coeffs[..tricky.len()].copy_from_slice(&tricky);
        for (i, v) in noise(2, 64 - tricky.len()).iter().enumerate() {
            coeffs[tricky.len() + i] = v * 200.0;
        }
        let qtable = [1.0f32; 64];
        let mut want = [0i32; 64];
        let want_zero = quantize_8x8(&coeffs, &qtable, &mut want, SimdLevel::Scalar);
        for (i, &c) in coeffs.iter().enumerate() {
            assert_eq!(want[i], c.round() as i32, "scalar ref idx {i}");
        }
        for level in simd_levels() {
            let mut got = [0i32; 64];
            let got_zero = quantize_8x8(&coeffs, &qtable, &mut got, level);
            assert_eq!(want, got, "{level:?}");
            assert_eq!(want_zero, got_zero, "{level:?} all_zero");
        }
        // And the all-zero path: tiny coefficients over a real qtable.
        let small: Vec<f32> = noise(3, 64).iter().map(|v| v * 1e-4).collect();
        coeffs.copy_from_slice(&small);
        let qt: Vec<f32> = (0..64).map(|i| 0.05 + i as f32 * 0.01).collect();
        let mut qtable2 = [0.0f32; 64];
        qtable2.copy_from_slice(&qt);
        let wz = quantize_8x8(&coeffs, &qtable2, &mut want, SimdLevel::Scalar);
        assert!(wz);
        for level in simd_levels() {
            let mut got = [0i32; 64];
            assert!(
                quantize_8x8(&coeffs, &qtable2, &mut got, level),
                "{level:?}"
            );
            assert_eq!(want, got, "{level:?}");
        }
    }

    #[test]
    fn dequantize_and_zigzag_levels_match() {
        let mut q = [0i32; 64];
        for (i, v) in q.iter_mut().enumerate() {
            *v = (i as i32 - 31) * 7;
        }
        let mut qtable = [0.0f32; 64];
        for (i, v) in qtable.iter_mut().enumerate() {
            *v = 0.02 + i as f32 * 0.013;
        }
        let mut want = [0.0f32; 64];
        dequantize_8x8(&q, &qtable, &mut want, SimdLevel::Scalar);
        let mut order = [0i32; 64];
        for (i, v) in order.iter_mut().enumerate() {
            *v = ((i * 29) % 64) as i32;
        }
        let mut want_z = [0i32; 64];
        zigzag_gather(&q, &order, &mut want_z, SimdLevel::Scalar);
        for level in simd_levels() {
            let mut got = [0.0f32; 64];
            dequantize_8x8(&q, &qtable, &mut got, level);
            for i in 0..64 {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "{level:?} idx {i}");
            }
            let mut got_z = [0i32; 64];
            zigzag_gather(&q, &order, &mut got_z, level);
            assert_eq!(want_z, got_z, "{level:?}");
        }
    }

    #[test]
    fn plane_ops_levels_are_bit_identical() {
        // Odd length exercises the scalar tails.
        let n = 1003;
        let a = noise(4, n);
        let b = noise(5, n);
        let mut want_sub = vec![0.0f32; n];
        sub_planes_scalar(&a, &b, &mut want_sub);
        let mut want_add = a.clone();
        add_planes_scalar(&mut want_add, &b);
        let mut want_subs = vec![0.0f32; n];
        sub_scalar_scalar(&a, 0.5, &mut want_subs);
        let mut want_adds = a.clone();
        add_scalar_scalar(&mut want_adds, 0.5);
        for level in simd_levels() {
            let mut got = vec![0.0f32; n];
            sub_planes_f32(&a, &b, &mut got, level);
            assert!(
                got.iter()
                    .zip(&want_sub)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "sub {level:?}"
            );
            let mut got2 = a.clone();
            add_planes_f32(&mut got2, &b, level);
            assert!(
                got2.iter()
                    .zip(&want_add)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "add {level:?}"
            );
            let mut got3 = vec![0.0f32; n];
            sub_scalar_f32(&a, 0.5, &mut got3, level);
            assert!(
                got3.iter()
                    .zip(&want_subs)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "subs {level:?}"
            );
            let mut got4 = a.clone();
            add_scalar_f32(&mut got4, 0.5, level);
            assert!(
                got4.iter()
                    .zip(&want_adds)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "adds {level:?}"
            );
        }
    }

    #[test]
    fn clamp_unit_levels_are_bit_identical() {
        let n = 203;
        let mut base = noise(20, n).iter().map(|v| v * 2.0).collect::<Vec<f32>>();
        // Edge cases: -0.0 survives (it is not < 0.0), NaN passes
        // through, and the bounds themselves are kept.
        base[0] = -0.0;
        base[1] = f32::NAN;
        base[2] = 0.0;
        base[3] = 1.0;
        base[4] = 1.0 + f32::EPSILON;
        base[5] = -f32::MIN_POSITIVE;
        let mut want = base.clone();
        clamp_unit_scalar(&mut want);
        assert_eq!(want[0].to_bits(), (-0.0f32).to_bits());
        for level in simd_levels() {
            let mut got = base.clone();
            clamp_unit_f32(&mut got, level);
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "{level:?} idx {i}");
            }
        }
    }

    #[test]
    fn add_clamp_unit_matches_two_pass_sequence() {
        let n = 203; // odd tail
        let mut base = noise(26, n)
            .iter()
            .map(|v| v * 2.0 - 0.5)
            .collect::<Vec<f32>>();
        base[0] = -0.5; // lands exactly on 0.0 after the +0.5 shift
        base[1] = f32::NAN;
        base[2] = 0.5; // lands exactly on 1.0
        base[3] = -0.5 - f32::EPSILON;
        // The fused kernel must equal add-then-clamp bit-for-bit, at
        // every level.
        let mut want = base.clone();
        add_scalar_scalar(&mut want, 0.5);
        clamp_unit_scalar(&mut want);
        for level in available_levels() {
            let mut got = base.clone();
            add_clamp_unit_f32(&mut got, 0.5, level);
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "{level:?} idx {i}");
            }
        }
    }

    #[test]
    fn any_abs_above_levels_agree() {
        let n = 517;
        let mut v = vec![1e-9f32; n];
        for level in available_levels() {
            assert!(!any_abs_above(&v, 1e-6, level), "{level:?} clean");
        }
        // A single spike anywhere must be found, including in the tail.
        for pos in [0, 63, 64, n - 1] {
            v[pos] = -2e-6;
            for level in available_levels() {
                assert!(any_abs_above(&v, 1e-6, level), "{level:?} spike at {pos}");
            }
            v[pos] = 1e-9;
        }
        // Threshold is strict.
        v[10] = 1e-6;
        for level in available_levels() {
            assert!(!any_abs_above(&v, 1e-6, level), "{level:?} equal-to-thresh");
        }
    }

    #[test]
    fn ssim_moments_levels_are_bit_identical() {
        let klen = 11;
        let n = 97; // odd: exercises both vector body and scalar tail
        let a = noise(9, n + klen - 1);
        let b = noise(10, n + klen - 1);
        let kernel = noise64(11, klen)
            .iter()
            .map(|v| v.abs() + 0.01)
            .collect::<Vec<_>>();
        let run = |level: SimdLevel| {
            let mut planes = vec![vec![0.0f64; n]; 5];
            let (pa, rest) = planes.split_at_mut(1);
            let (pb, rest) = rest.split_at_mut(1);
            let (paa, rest) = rest.split_at_mut(1);
            let (pbb, pab) = rest.split_at_mut(1);
            let mut out = MomentRowsMut {
                a: &mut pa[0],
                b: &mut pb[0],
                aa: &mut paa[0],
                bb: &mut pbb[0],
                ab: &mut pab[0],
            };
            ssim_moments_row(&a, &b, &kernel, &mut out, level);
            planes
        };
        let want = run(SimdLevel::Scalar);
        for level in simd_levels() {
            let got = run(level);
            for (p, (wp, gp)) in want.iter().zip(&got).enumerate() {
                for i in 0..n {
                    assert_eq!(
                        wp[i].to_bits(),
                        gp[i].to_bits(),
                        "{level:?} plane {p} center {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn ssim_windows_levels_are_bit_identical() {
        let klen = 11;
        let stride = 101;
        let n = 97; // odd: exercises both vector body and scalar tail
                    // Build plausible moment planes: squared moments must dominate
                    // the mean products so variances land on both sides of the
                    // clamp (negatives exercise the compare-and-select path).
        let a = noise64(20, klen * stride);
        let b = noise64(21, klen * stride);
        let aa: Vec<f64> = noise64(22, klen * stride).iter().map(|v| v * v).collect();
        let bb: Vec<f64> = noise64(23, klen * stride).iter().map(|v| v * v).collect();
        let ab = noise64(24, klen * stride);
        let kernel: Vec<f64> = noise64(25, klen).iter().map(|v| v.abs() + 0.01).collect();
        let rows = MomentRows {
            a: &a,
            b: &b,
            aa: &aa,
            bb: &bb,
            ab: &ab,
        };
        let run = |level: SimdLevel| {
            let mut out = vec![0.0f64; n];
            ssim_windows_row(
                &rows, stride, &kernel, 6.5025e-5, 5.8523e-4, &mut out, level,
            );
            out
        };
        let want = run(SimdLevel::Scalar);
        for level in simd_levels() {
            let got = run(level);
            for i in 0..n {
                assert_eq!(want[i].to_bits(), got[i].to_bits(), "{level:?} center {i}");
            }
        }
    }

    #[test]
    fn masked_select_levels_are_bit_identical() {
        let n = 261;
        let src = noise(12, n);
        let base = noise(13, n);
        let mask: Vec<u8> = (0..n)
            .map(|i| ((i * 7) % 3 == 0) as u8 * ((i % 5) as u8 + 1))
            .collect();
        let mut want = base.clone();
        masked_select_scalar(&mut want, &src, &mask);
        for level in simd_levels() {
            let mut got = base.clone();
            masked_select_f32(&mut got, &src, &mask, level);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{level:?}"
            );
        }
    }

    #[test]
    fn sphere_and_slab_levels_agree() {
        let n = 157;
        let angles: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 0.5) / n as f64 * std::f64::consts::TAU - std::f64::consts::PI)
            .collect();
        let col_sin: Vec<f64> = angles.iter().map(|a| a.sin()).collect();
        let col_cos: Vec<f64> = angles.iter().map(|a| a.cos()).collect();
        let p = SphereHit {
            ce: 0.93,
            vx: 1.7,
            vz: -2.3,
            y_term: 0.21,
            dist: 3.1,
            cos_half_width: 0.92,
        };
        let mut want = vec![0u8; n];
        sphere_hit_scalar(&col_sin, &col_cos, &p, &mut want);
        assert!(want.contains(&1) && want.contains(&0));
        for level in simd_levels() {
            let mut got = vec![0u8; n];
            sphere_hit_mask(&col_sin, &col_cos, &p, &mut got, level);
            assert_eq!(want, got, "sphere {level:?}");
        }
        // Slab: pick a center near the wrap seam so both correction
        // branches fire.
        for center in [3.0f64, -3.0, 0.4] {
            let mut want_s = vec![0u8; n];
            slab_hit_scalar(&angles, center, 0.35, &mut want_s);
            assert!(want_s.contains(&1));
            for level in simd_levels() {
                let mut got = vec![0u8; n];
                slab_hit_mask(&angles, center, 0.35, &mut got, level);
                assert_eq!(want_s, got, "slab {level:?} center {center}");
            }
        }
    }
}
