//! # coterie-parallel
//!
//! Minimal data-parallel substrate built on crossbeam's scoped threads,
//! shared by the renderer (band-parallel panoramas), the frame crate
//! (separable SSIM on large frames), the simulator (similarity sweeps,
//! pre-render batches) and the serve fleet (room boot, farm batches).
//!
//! Three primitives cover every hot path in the workspace:
//!
//! * [`par_map`] — chunked fan-out for uniform per-item cost,
//! * [`par_map_ws`] — work-stealing-style dynamic claiming for skewed
//!   per-item cost,
//! * [`par_for_each`] — explicit task-per-thread execution for callers
//!   that pre-partition mutable state (e.g. disjoint frame bands).
//!
//! All three preserve determinism: results come back in input order and
//! side effects land in caller-partitioned disjoint state, so output is
//! independent of scheduling and thread count.

// `deny` (not `forbid`) so the `simd` module can opt back in for its
// intrinsics with a module-level `allow`; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod simd;

/// Applies `f` to every item, fanning out across up to
/// `available_parallelism` threads, and returns results in input order.
///
/// Items are distributed in contiguous chunks, so `f` should have
/// roughly uniform cost per item.
///
/// # Example
///
/// ```
/// use coterie_parallel::par_map;
/// let squares = par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        for chunk_items in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(chunk_items.len().min(rest.len()));
            rest = tail;
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel workers must not panic");

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Applies `f` to every item with dynamic (work-stealing) scheduling,
/// returning results in input order.
///
/// Unlike [`par_map`], which hands each worker one contiguous chunk up
/// front, workers here claim items one at a time: a shared counter
/// hands out indices and each worker parks `(index, result)` pairs in
/// its own deque until the queue drains. A single pathologically
/// expensive item therefore occupies one worker while the rest of the
/// input flows through the others — no straggling tail. Use it when
/// per-item cost is non-uniform (e.g. pre-rendering frames whose
/// triangle counts vary by orders of magnitude); for uniform work it
/// falls back to the cheaper chunked path, since dynamic claiming only
/// adds contention there.
///
/// # Example
///
/// ```
/// use coterie_parallel::par_map_ws;
/// let squares = par_map_ws(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map_ws<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    // With at most one item per worker there is nothing to steal;
    // the chunked path handles these (and the serial cases) fine.
    if threads <= 1 || items.len() <= threads {
        return par_map(items, f);
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move |_| {
                    let worker = crossbeam::deque::Worker::new_fifo();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        worker.push((i, f(&items[i])));
                    }
                    let mut out = Vec::new();
                    while let Some(pair) = worker.pop() {
                        out.push(pair);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel workers must not panic"))
            .collect()
    })
    .expect("parallel workers must not panic");

    // Re-assemble in input order regardless of which worker produced
    // which item, so callers see deterministic output.
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    for (i, r) in per_worker.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Runs `f` once per item, one scoped thread per item (serial when there
/// is at most one item).
///
/// This is the primitive for *pre-partitioned* mutable work: the caller
/// splits its state into disjoint pieces — e.g. a frame buffer split into
/// horizontal bands with `split_at_mut` — wraps each piece in an item,
/// and decides the fan-out by how many items it builds. Because every
/// item owns its slice exclusively, the result is bit-identical to the
/// serial execution no matter how the threads are scheduled.
///
/// # Example
///
/// ```
/// use coterie_parallel::par_for_each;
/// let mut buf = vec![0u64; 8];
/// let (lo, hi) = buf.split_at_mut(4);
/// par_for_each(vec![(0u64, lo), (4u64, hi)], |(base, half)| {
///     for (i, v) in half.iter_mut().enumerate() {
///         *v = base + i as u64;
///     }
/// });
/// assert_eq!(buf, (0..8).collect::<Vec<u64>>());
/// ```
pub fn par_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    crossbeam::thread::scope(|scope| {
        for item in items {
            let f = &f;
            scope.spawn(move |_| f(item));
        }
    })
    .expect("parallel workers must not panic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map() {
        let input: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = input.iter().map(|&x| x.sin()).collect();
        let parallel = par_map(&input, |&x| x.sin());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn heavy_closure_with_captured_state() {
        let factor = 3u64;
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| x * factor);
        assert_eq!(out[10], 30);
    }

    #[test]
    fn ws_matches_serial_map() {
        let input: Vec<f64> = (0..513).map(|i| i as f64 * 0.31).collect();
        let serial: Vec<f64> = input.iter().map(|&x| x.cos()).collect();
        assert_eq!(par_map_ws(&input, |&x| x.cos()), serial);
    }

    #[test]
    fn ws_empty_and_small_inputs() {
        let out: Vec<u32> = par_map_ws(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        assert_eq!(par_map_ws(&[7], |&x| x + 1), vec![8]);
        assert_eq!(par_map_ws(&[1, 2], |&x| x * 10), vec![10, 20]);
    }

    /// One item 100× heavier than the rest: dynamic claiming must not
    /// serialize the light items behind it. The worker that draws the
    /// heavy item (index 0, claimed first) stays busy on it while the
    /// other workers drain everything else, so it ends up with far
    /// fewer items than an even chunked split would give it.
    #[test]
    fn ws_skewed_workload_does_not_straggle() {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads < 2 {
            return; // no second worker to absorb the light items
        }
        let spin = |units: u64| -> u64 {
            let mut acc = 0x9E3779B97F4A7C15u64;
            for i in 0..units * 20_000 {
                acc = acc.rotate_left(7) ^ i;
            }
            acc
        };
        // Item 0 costs 100 units, the other 255 cost 1 unit each.
        let weights: Vec<u64> = std::iter::once(100)
            .chain(std::iter::repeat_n(1, 255))
            .collect();
        let who: Vec<std::sync::Mutex<std::thread::ThreadId>> = weights
            .iter()
            .map(|_| std::sync::Mutex::new(std::thread::current().id()))
            .collect();
        let out = par_map_ws(
            &weights.iter().copied().enumerate().collect::<Vec<_>>(),
            |&(i, w)| {
                *who[i].lock().expect("who lock") = std::thread::current().id();
                spin(w)
            },
        );
        assert_eq!(out.len(), weights.len());
        let heavy_worker = *who[0].lock().expect("who lock");
        let handled_by_heavy = who
            .iter()
            .filter(|m| *m.lock().expect("who lock") == heavy_worker)
            .count();
        // A chunked split would hand the heavy worker len/threads items
        // (>= 16 on <= 16 cores); with stealing it should finish the
        // heavy item plus at most a handful it claimed before/after.
        let chunk = weights.len() / threads.min(weights.len());
        assert!(
            handled_by_heavy < chunk.max(8),
            "heavy worker handled {handled_by_heavy} items (chunk would be {chunk})"
        );
    }

    #[test]
    fn for_each_covers_disjoint_bands() {
        let mut buf = vec![0u32; 64];
        let mut bands = Vec::new();
        let mut rest = buf.as_mut_slice();
        let mut base = 0u32;
        for _ in 0..7 {
            let take = rest.len().min(10);
            let (head, tail) = rest.split_at_mut(take);
            bands.push((base, head));
            base += take as u32;
            rest = tail;
        }
        bands.push((base, rest));
        par_for_each(bands, |(start, slice)| {
            for (i, v) in slice.iter_mut().enumerate() {
                *v = start + i as u32;
            }
        });
        let expect: Vec<u32> = (0..64).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn for_each_empty_and_single() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        par_for_each(Vec::<u8>::new(), |_| panic!("must not run"));
        let hits = AtomicUsize::new(0);
        par_for_each(vec![()], |()| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
