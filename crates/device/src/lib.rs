//! # coterie-device
//!
//! Analytic mobile-device model: render timing, CPU costs, thermals and
//! battery power.
//!
//! The paper's evaluation platform is a Google Pixel 2 (Snapdragon 835,
//! Adreno 540). We model it with a handful of calibrated constants:
//!
//! * GPU render time grows linearly with triangle count — the paper's own
//!   cost proxy ("the rendering speed is correlated with the triangle
//!   count of the objects", §4.3). The throughput constant is calibrated
//!   so that whole-BE rendering of the testbed games lands at the
//!   24–27 FPS the paper measures for the Mobile baseline (Table 1).
//! * CPU time is charged per decoded/transferred megabyte (hardware
//!   decoder assist + TCP packet processing, cf. Furion's estimate that
//!   4 Gbps would need 16 busy cores).
//! * An RC thermal model and a linear power model reproduce the Figure 12
//!   time series: ≈4 W steady draw, SoC temperature rising toward but
//!   staying under the 52 °C Pixel 2 thermal limit.
//!
//! # Example
//!
//! ```
//! use coterie_device::DeviceProfile;
//!
//! let phone = DeviceProfile::pixel2();
//! // Rendering half a million triangles takes tens of ms on a phone...
//! assert!(phone.render_ms(500_000) > 16.7);
//! // ...so the near-BE triangle budget for a 12.7 ms slot is well below that.
//! assert!(phone.triangle_budget(12.7) < 500_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod power;
pub mod thermal;
pub mod throttle;

pub use power::PowerModel;
pub use thermal::ThermalModel;
pub use throttle::ThrottleGovernor;

use serde::{Deserialize, Serialize};

/// The 60 FPS QoE deadline: 16.7 ms per frame (§1, §4.3).
pub const FRAME_BUDGET_MS: f64 = 16.7;

/// Rendering-performance profile of a device (phone or server GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Sustained triangle throughput, triangles per millisecond.
    pub gpu_triangles_per_ms: f64,
    /// Fixed per-frame GPU cost (driver, state, projection), ms.
    pub gpu_frame_overhead_ms: f64,
    /// Hardware video-decode cost per megabyte, ms/MB.
    pub decode_ms_per_mb: f64,
    /// Fixed per-frame decode latency (pipeline setup), ms.
    pub decode_overhead_ms: f64,
    /// CPU cost of receiving and processing network data, core-ms per MB.
    pub net_cpu_ms_per_mb: f64,
    /// Baseline per-frame CPU work (game logic, sensors, compositor),
    /// core-ms.
    pub cpu_base_ms_per_frame: f64,
    /// Number of CPU cores available for utilization accounting.
    pub cpu_cores: f64,
    /// Cost of merging near and far layers (task 5 of the client loop),
    /// ms.
    pub merge_ms: f64,
}

impl DeviceProfile {
    /// A Pixel-2-class phone (Snapdragon 835 + Adreno 540).
    ///
    /// `gpu_triangles_per_ms` is calibrated so whole-scene rendering of
    /// the testbed games reproduces Table 1's Mobile rows (≈24–27 FPS),
    /// while FI + near BE fits the 12.7 ms constraint at Viking-scale
    /// cutoffs of 2–28 m.
    pub fn pixel2() -> Self {
        DeviceProfile {
            name: "Pixel 2".to_string(),
            gpu_triangles_per_ms: 25_000.0,
            gpu_frame_overhead_ms: 1.2,
            decode_ms_per_mb: 6.0,
            decode_overhead_ms: 1.5,
            net_cpu_ms_per_mb: 8.0,
            cpu_base_ms_per_frame: 12.0,
            cpu_cores: 4.0,
            merge_ms: 0.8,
        }
    }

    /// The render server (GTX 1080 Ti class): ~25× phone GPU throughput.
    pub fn render_server() -> Self {
        DeviceProfile {
            name: "GTX 1080 Ti server".to_string(),
            gpu_triangles_per_ms: 600_000.0,
            gpu_frame_overhead_ms: 0.4,
            decode_ms_per_mb: 1.0,
            decode_overhead_ms: 0.2,
            net_cpu_ms_per_mb: 1.0,
            cpu_base_ms_per_frame: 2.0,
            cpu_cores: 12.0,
            merge_ms: 0.1,
        }
    }

    /// GPU time to render `triangles`, in ms.
    pub fn render_ms(&self, triangles: u64) -> f64 {
        self.gpu_frame_overhead_ms + triangles as f64 / self.gpu_triangles_per_ms
    }

    /// The largest triangle count renderable within `budget_ms`
    /// (0 if the budget does not even cover fixed overhead).
    pub fn triangle_budget(&self, budget_ms: f64) -> u64 {
        let avail = budget_ms - self.gpu_frame_overhead_ms;
        if avail <= 0.0 {
            0
        } else {
            (avail * self.gpu_triangles_per_ms) as u64
        }
    }

    /// Video decode latency for a payload of `bytes`, in ms.
    pub fn decode_ms(&self, bytes: u64) -> f64 {
        self.decode_overhead_ms + bytes as f64 / 1.0e6 * self.decode_ms_per_mb
    }

    /// CPU core-ms consumed receiving `bytes` from the network.
    pub fn net_cpu_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / 1.0e6 * self.net_cpu_ms_per_mb
    }

    /// CPU utilization (fraction of all cores, `[0, 1]`) given busy
    /// core-ms accumulated over an interval.
    pub fn cpu_utilization(&self, busy_core_ms: f64, interval_ms: f64) -> f64 {
        if interval_ms <= 0.0 {
            return 0.0;
        }
        (busy_core_ms / (interval_ms * self.cpu_cores)).clamp(0.0, 1.0)
    }

    /// GPU utilization (fraction, `[0, 1]`) given busy GPU ms over an
    /// interval.
    pub fn gpu_utilization(&self, busy_gpu_ms: f64, interval_ms: f64) -> f64 {
        if interval_ms <= 0.0 {
            return 0.0;
        }
        (busy_gpu_ms / interval_ms).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_time_linear_in_triangles() {
        let p = DeviceProfile::pixel2();
        let t1 = p.render_ms(100_000);
        let t2 = p.render_ms(200_000);
        assert!(t2 > t1);
        let marginal = t2 - t1;
        assert!((marginal - 100_000.0 / p.gpu_triangles_per_ms).abs() < 1e-9);
    }

    #[test]
    fn triangle_budget_inverts_render_ms() {
        let p = DeviceProfile::pixel2();
        let budget = p.triangle_budget(12.7);
        let t = p.render_ms(budget);
        assert!(t <= 12.7 + 1e-6, "budget violates its own constraint: {t}");
        // One more "object" worth of triangles breaks it.
        assert!(p.render_ms(budget + 60_000) > 12.7);
    }

    #[test]
    fn tiny_budget_renders_nothing() {
        let p = DeviceProfile::pixel2();
        assert_eq!(p.triangle_budget(0.5), 0);
        assert_eq!(p.triangle_budget(-3.0), 0);
    }

    #[test]
    fn mobile_baseline_fps_matches_table1() {
        // Table 1: Mobile renders whole scenes at 24-27 FPS (inter-frame
        // ~38-42 ms). Visible triangle loads of ~0.9-1.0M reproduce that.
        let p = DeviceProfile::pixel2();
        let visible_triangles = 950_000;
        let ms = p.render_ms(visible_triangles);
        let fps = 1000.0 / ms;
        assert!(
            (22.0..30.0).contains(&fps),
            "whole-scene mobile rendering should land near 24-27 FPS, got {fps:.1}"
        );
    }

    #[test]
    fn server_much_faster_than_phone() {
        let phone = DeviceProfile::pixel2();
        let server = DeviceProfile::render_server();
        assert!(server.gpu_triangles_per_ms > phone.gpu_triangles_per_ms * 10.0);
        assert!(server.render_ms(1_000_000) < phone.render_ms(1_000_000) / 10.0);
    }

    #[test]
    fn decode_cost_scales_with_bytes() {
        let p = DeviceProfile::pixel2();
        // A 550 KB Multi-Furion BE frame decodes in a few ms (paper's
        // decode runs concurrently within the 16.7 ms window).
        let d = p.decode_ms(550_000);
        assert!((2.0..10.0).contains(&d), "decode {d} ms");
        assert!(p.decode_ms(150_000) < d);
    }

    #[test]
    fn utilization_clamped() {
        let p = DeviceProfile::pixel2();
        assert_eq!(p.cpu_utilization(1e9, 16.7), 1.0);
        assert_eq!(p.cpu_utilization(0.0, 16.7), 0.0);
        assert_eq!(p.cpu_utilization(10.0, 0.0), 0.0);
        assert_eq!(p.gpu_utilization(8.35, 16.7), 0.5);
        assert_eq!(p.gpu_utilization(100.0, 16.7), 1.0);
    }

    #[test]
    fn cpu_utilization_reasonable_for_coterie_load() {
        // Coterie: ~32% CPU (Table 8). Busy work per 16.7ms frame:
        // base logic + decode CPU share + net processing of ~194KB/5 frames.
        let p = DeviceProfile::pixel2();
        let busy = p.cpu_base_ms_per_frame + p.net_cpu_ms(194_000 / 5) + 2.0;
        let util = p.cpu_utilization(busy, FRAME_BUDGET_MS);
        assert!((0.15..0.50).contains(&util), "CPU util {util}");
    }
}
