//! Battery power model.
//!
//! The paper logs current and voltage from
//! `/sys/class/power_supply/battery` and observes a steady ≈4 W draw
//! under Coterie with the screen locked at 100 % brightness in VR mode
//! (Figure 12). We model power as a linear combination of display, CPU,
//! GPU and radio activity — the standard utilization-based smartphone
//! power model.

use serde::{Deserialize, Serialize};

/// Pixel 2 battery capacity in milliamp-hours (§7.3).
pub const PIXEL2_BATTERY_MAH: f64 = 2770.0;

/// Nominal battery voltage, volts.
pub const BATTERY_VOLTAGE_V: f64 = 3.85;

/// Linear utilization-based power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle platform power (SoC idle, sensors, Android), watts.
    pub base_w: f64,
    /// Display at VR brightness, watts.
    pub display_w: f64,
    /// Additional power at 100 % CPU utilization, watts.
    pub cpu_full_w: f64,
    /// Additional power at 100 % GPU utilization, watts.
    pub gpu_full_w: f64,
    /// WiFi radio energy per megabit received, joules/Mb.
    pub wifi_j_per_mb: f64,
}

impl PowerModel {
    /// A Pixel-2-like model, calibrated so a Coterie-style load
    /// (≈32 % CPU, ≈58 % GPU, tens of Mbps) draws ≈4 W.
    pub fn pixel2() -> Self {
        PowerModel {
            base_w: 0.55,
            display_w: 1.1,
            cpu_full_w: 2.4,
            gpu_full_w: 2.2,
            wifi_j_per_mb: 0.012,
        }
    }

    /// Instantaneous power draw in watts.
    ///
    /// `cpu_util` and `gpu_util` are fractions in `[0, 1]`;
    /// `net_mbps` is the current downlink throughput.
    pub fn draw_w(&self, cpu_util: f64, gpu_util: f64, net_mbps: f64) -> f64 {
        self.base_w
            + self.display_w
            + self.cpu_full_w * cpu_util.clamp(0.0, 1.0)
            + self.gpu_full_w * gpu_util.clamp(0.0, 1.0)
            + self.wifi_j_per_mb * net_mbps.max(0.0)
    }

    /// Battery lifetime in hours at a sustained draw, for a battery of
    /// `capacity_mah` at the nominal voltage.
    pub fn battery_hours(&self, sustained_w: f64, capacity_mah: f64) -> f64 {
        if sustained_w <= 0.0 {
            return f64::INFINITY;
        }
        capacity_mah / 1000.0 * BATTERY_VOLTAGE_V / sustained_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coterie_load_draws_about_4w() {
        let m = PowerModel::pixel2();
        // Table 8 / Figure 12 operating point: 32% CPU, 58% GPU, ~26 Mbps.
        let p = m.draw_w(0.32, 0.58, 26.0);
        assert!((3.3..4.6).contains(&p), "draw {p:.2} W should be near 4 W");
    }

    #[test]
    fn idle_draw_is_display_dominated() {
        let m = PowerModel::pixel2();
        let p = m.draw_w(0.0, 0.0, 0.0);
        assert!((1.0..2.5).contains(&p));
    }

    #[test]
    fn power_monotone_in_each_input() {
        let m = PowerModel::pixel2();
        let base = m.draw_w(0.3, 0.5, 20.0);
        assert!(m.draw_w(0.6, 0.5, 20.0) > base);
        assert!(m.draw_w(0.3, 0.9, 20.0) > base);
        assert!(m.draw_w(0.3, 0.5, 200.0) > base);
    }

    #[test]
    fn utilization_clamped() {
        let m = PowerModel::pixel2();
        assert_eq!(m.draw_w(5.0, 0.0, 0.0), m.draw_w(1.0, 0.0, 0.0));
        assert_eq!(m.draw_w(-1.0, 0.0, 0.0), m.draw_w(0.0, 0.0, 0.0));
    }

    #[test]
    fn battery_life_exceeds_2_5_hours() {
        // "all three high-quality multiplayer VR apps can last for more
        // than 2.5 hours" at ~4 W on a 2770 mAh battery (§7.3).
        let m = PowerModel::pixel2();
        let hours = m.battery_hours(4.0, PIXEL2_BATTERY_MAH);
        assert!(hours > 2.5, "battery life {hours:.2} h");
        assert!(hours < 3.5, "battery life {hours:.2} h suspiciously long");
    }

    #[test]
    fn zero_draw_lasts_forever() {
        let m = PowerModel::pixel2();
        assert_eq!(m.battery_hours(0.0, PIXEL2_BATTERY_MAH), f64::INFINITY);
    }
}
