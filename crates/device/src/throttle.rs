//! Thermal throttling: the failure mode Coterie's resource frugality
//! avoids.
//!
//! The paper highlights that Coterie's ≤40 % CPU / ≤65 % GPU usage
//! "allows the system to sustain long running of VR apps without being
//! restricted by temperature control" (§1, §7.3). This module models
//! that temperature control: when the SoC crosses the thermal limit the
//! governor caps GPU throughput, and performance only recovers once the
//! die cools below a hysteresis band — the sawtooth every sustained
//! mobile workload knows.

use crate::thermal::ThermalModel;
use serde::{Deserialize, Serialize};

/// A thermal governor wrapping a [`ThermalModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleGovernor {
    thermal: ThermalModel,
    /// Temperature at which throttling engages, °C.
    pub limit_c: f64,
    /// Temperature below which full speed is restored, °C.
    pub resume_c: f64,
    /// GPU/CPU frequency multiplier while throttled (0 < x ≤ 1).
    pub throttled_scale: f64,
    throttled: bool,
}

impl ThrottleGovernor {
    /// A Pixel-2-like governor: engage at 52 °C, resume at 48 °C, run at
    /// 60 % clocks while hot.
    pub fn pixel2() -> Self {
        ThrottleGovernor {
            thermal: ThermalModel::pixel2(),
            limit_c: crate::thermal::PIXEL2_THERMAL_LIMIT_C,
            resume_c: 48.0,
            throttled_scale: 0.6,
            throttled: false,
        }
    }

    /// Creates a governor around an explicit thermal model.
    ///
    /// # Panics
    ///
    /// Panics if `resume_c >= limit_c` or `throttled_scale` is not in
    /// `(0, 1]`.
    pub fn new(thermal: ThermalModel, limit_c: f64, resume_c: f64, throttled_scale: f64) -> Self {
        assert!(
            resume_c < limit_c,
            "hysteresis band must be below the limit"
        );
        assert!(
            throttled_scale > 0.0 && throttled_scale <= 1.0,
            "throttle scale must be in (0, 1]"
        );
        ThrottleGovernor {
            thermal,
            limit_c,
            resume_c,
            throttled_scale,
            throttled: false,
        }
    }

    /// Current SoC temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.thermal.temperature_c()
    }

    /// Whether the governor is currently limiting clocks.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// The current performance multiplier (1.0 when cool).
    pub fn performance_scale(&self) -> f64 {
        if self.throttled {
            self.throttled_scale
        } else {
            1.0
        }
    }

    /// Advances the model by `dt_s` seconds at `watts` draw and updates
    /// the throttle state with hysteresis. Returns the performance scale
    /// in effect for the *next* interval.
    pub fn step(&mut self, watts: f64, dt_s: f64) -> f64 {
        // Throttling itself reduces power: the die draws proportionally
        // less while clocks are capped.
        let effective_watts = watts * self.performance_scale();
        self.thermal.step(effective_watts, dt_s);
        let t = self.thermal.temperature_c();
        if self.throttled {
            if t <= self.resume_c {
                self.throttled = false;
            }
        } else if t >= self.limit_c {
            self.throttled = true;
        }
        self.performance_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::ThermalModel;

    #[test]
    fn cool_device_runs_full_speed() {
        let mut g = ThrottleGovernor::pixel2();
        for _ in 0..30 {
            assert_eq!(g.step(4.0, 60.0), 1.0, "4 W never throttles a Pixel 2");
        }
        assert!(!g.is_throttled());
    }

    #[test]
    fn sustained_overload_throttles_then_recovers() {
        // 8 W steady state would be 25 + 5.5*8 = 69 C: must throttle.
        let mut g = ThrottleGovernor::pixel2();
        let mut throttled_seen = false;
        for _ in 0..120 {
            g.step(8.0, 30.0);
            throttled_seen |= g.is_throttled();
        }
        assert!(throttled_seen, "8 W must eventually throttle");
        // Idle cooldown restores full speed.
        for _ in 0..200 {
            g.step(0.5, 30.0);
        }
        assert!(!g.is_throttled());
        assert_eq!(g.performance_scale(), 1.0);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut g = ThrottleGovernor::new(ThermalModel::pixel2(), 52.0, 48.0, 0.6);
        // Drive to the limit.
        while !g.is_throttled() {
            g.step(9.0, 30.0);
        }
        // Once throttled, the *release transition* must happen at or
        // below resume_c, never merely below the limit.
        let mut was_throttled = true;
        for _ in 0..200 {
            g.step(6.0, 10.0);
            if was_throttled && !g.is_throttled() {
                assert!(
                    g.temperature_c() <= g.resume_c + 0.2,
                    "released at {:.1} C, above the resume point",
                    g.temperature_c()
                );
            }
            was_throttled = g.is_throttled();
        }
    }

    #[test]
    fn throttled_power_is_reduced() {
        // At a draw whose throttled steady state sits inside the
        // hysteresis band, the device oscillates (the classic sawtooth)
        // rather than melting.
        let mut g = ThrottleGovernor::pixel2();
        let mut max_t: f64 = 0.0;
        for _ in 0..600 {
            g.step(9.0, 10.0);
            max_t = max_t.max(g.temperature_c());
        }
        assert!(
            max_t < 56.0,
            "governor failed to bound temperature: {max_t:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn invalid_hysteresis_rejected() {
        let _ = ThrottleGovernor::new(ThermalModel::pixel2(), 50.0, 51.0, 0.6);
    }
}
