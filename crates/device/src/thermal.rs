//! First-order RC thermal model of the phone SoC.
//!
//! Figure 12 of the paper shows SoC temperature rising gradually over a
//! 30-minute session while staying under the Pixel 2's 52 °C thermal
//! limit (read from `/vendor/etc/thermal-engine.conf`). A single-pole RC
//! model captures exactly that shape:
//!
//! `dT/dt = (T_ambient + R·P − T) / τ`

use serde::{Deserialize, Serialize};

/// Pixel 2 thermal throttling threshold, °C (§7.3).
pub const PIXEL2_THERMAL_LIMIT_C: f64 = 52.0;

/// RC thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance, °C per watt — how far above ambient the SoC
    /// settles per watt of sustained power.
    pub resistance_c_per_w: f64,
    /// Time constant, seconds — how quickly the SoC approaches its
    /// steady state.
    pub tau_s: f64,
    /// Current SoC temperature, °C.
    temperature_c: f64,
}

impl ThermalModel {
    /// A Pixel-2-like phone in a 25 °C room: 4 W sustained settles at
    /// ≈47 °C — warm, but under the 52 °C limit, matching Figure 12.
    pub fn pixel2() -> Self {
        ThermalModel {
            ambient_c: 25.0,
            resistance_c_per_w: 5.5,
            tau_s: 420.0,
            temperature_c: 25.0,
        }
    }

    /// Creates a model at thermal equilibrium with the room.
    ///
    /// # Panics
    ///
    /// Panics if `tau_s` or `resistance_c_per_w` is not positive.
    pub fn new(ambient_c: f64, resistance_c_per_w: f64, tau_s: f64) -> Self {
        assert!(tau_s > 0.0, "thermal time constant must be positive");
        assert!(
            resistance_c_per_w > 0.0,
            "thermal resistance must be positive"
        );
        ThermalModel {
            ambient_c,
            resistance_c_per_w,
            tau_s,
            temperature_c: ambient_c,
        }
    }

    /// Current SoC temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Steady-state temperature under sustained power `watts`.
    pub fn steady_state_c(&self, watts: f64) -> f64 {
        self.ambient_c + self.resistance_c_per_w * watts
    }

    /// Advances the model by `dt_s` seconds while drawing `watts`.
    /// Uses the exact exponential solution, so large steps are stable.
    pub fn step(&mut self, watts: f64, dt_s: f64) {
        let target = self.steady_state_c(watts);
        let k = (-dt_s / self.tau_s).exp();
        self.temperature_c = target + (self.temperature_c - target) * k;
    }

    /// Whether the SoC has reached the thermal throttling limit.
    pub fn throttled(&self, limit_c: f64) -> bool {
        self.temperature_c >= limit_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient() {
        let m = ThermalModel::pixel2();
        assert_eq!(m.temperature_c(), 25.0);
    }

    #[test]
    fn rises_monotonically_toward_steady_state() {
        let mut m = ThermalModel::pixel2();
        let mut last = m.temperature_c();
        for _ in 0..60 {
            m.step(4.0, 30.0);
            assert!(m.temperature_c() >= last);
            last = m.temperature_c();
        }
        let ss = m.steady_state_c(4.0);
        assert!(
            (m.temperature_c() - ss).abs() < 1.0,
            "{} vs {ss}",
            m.temperature_c()
        );
    }

    #[test]
    fn thirty_minutes_at_4w_stays_under_limit() {
        // The paper's headline thermal result (Figure 12).
        let mut m = ThermalModel::pixel2();
        for _ in 0..(30 * 60) {
            m.step(4.0, 1.0);
        }
        assert!(
            m.temperature_c() < PIXEL2_THERMAL_LIMIT_C,
            "temperature {:.1} exceeds the 52C limit",
            m.temperature_c()
        );
        assert!(m.temperature_c() > 40.0, "should be visibly warm");
        assert!(!m.throttled(PIXEL2_THERMAL_LIMIT_C));
    }

    #[test]
    fn higher_power_runs_hotter() {
        let mut a = ThermalModel::pixel2();
        let mut b = ThermalModel::pixel2();
        for _ in 0..100 {
            a.step(3.0, 30.0);
            b.step(6.0, 30.0);
        }
        assert!(b.temperature_c() > a.temperature_c());
    }

    #[test]
    fn cools_when_power_drops() {
        let mut m = ThermalModel::pixel2();
        for _ in 0..100 {
            m.step(6.0, 30.0);
        }
        let hot = m.temperature_c();
        for _ in 0..100 {
            m.step(0.5, 30.0);
        }
        assert!(m.temperature_c() < hot);
    }

    #[test]
    fn exact_solution_is_step_size_invariant() {
        let mut fine = ThermalModel::pixel2();
        let mut coarse = ThermalModel::pixel2();
        for _ in 0..600 {
            fine.step(4.0, 1.0);
        }
        for _ in 0..10 {
            coarse.step(4.0, 60.0);
        }
        assert!((fine.temperature_c() - coarse.temperature_c()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time constant must be positive")]
    fn invalid_tau_rejected() {
        let _ = ThermalModel::new(25.0, 5.0, 0.0);
    }
}
