//! Fault-injection scenarios for the FI datagram path.
//!
//! The paper relays foreground-interaction state over a lossy UDP path
//! (§5.1 task 4) and footnotes its 2–3 ms sync cost under a *healthy*
//! WLAN. A fleet host cares about the unhealthy cases: interference
//! bursts, queueing spikes and relay restarts. [`FiChannel`] wraps the
//! base [`DatagramChannel`] with a selectable [`NetScenario`] so those
//! conditions become seeded, reproducible experiments
//! (`experiments fleet --net <scenario>`).
//!
//! Scenario catalog (all parameters are documented constants):
//!
//! * **`None`** — the fault plane is disabled entirely; consumers fall
//!   back to their lossless constant-latency model.
//! * **`Wifi`** — the baseline testbed WLAN: independent 0.3 % loss with
//!   sub-millisecond jitter ([`DatagramChannel::wifi_fi`]).
//! * **`BurstLoss`** — a Gilbert–Elliott two-state chain on top of the
//!   baseline: a low-loss *good* state and a *bad* (interference) state
//!   where roughly half of all packets die, with geometric sojourn times.
//! * **`LatencySpikes`** — baseline loss, but a fraction of delivered
//!   packets are delayed by a queueing spike far beyond the jitter band.
//! * **`RelayOutage`** — a transient server-relay outage: every packet
//!   sent inside a periodic outage window is lost (all players of a room
//!   see the same wall of loss, since the window is a function of
//!   simulated time, not of channel state).

use crate::channel::noise_free_rng::DeterministicRng;
use crate::channel::{DatagramChannel, Delivery};
use serde::{Deserialize, Serialize};

/// Relay processing time charged between the two hops of a state sync,
/// ms (matches the base channel's relay model).
pub const RELAY_PROCESS_MS: f64 = 0.3;

/// Gilbert–Elliott transition probability good → bad (per packet).
const GE_GOOD_TO_BAD: f64 = 0.015;
/// Gilbert–Elliott transition probability bad → good (per packet).
const GE_BAD_TO_GOOD: f64 = 0.2;
/// Extra per-packet loss probability while in the bad state.
const GE_BAD_LOSS: f64 = 0.5;

/// Probability that a delivered packet rides a queueing spike.
const SPIKE_PROB: f64 = 0.04;
/// Added one-way latency of a queueing spike, ms.
const SPIKE_MS: f64 = 22.0;

/// Relay outage period, simulated ms.
const OUTAGE_PERIOD_MS: f64 = 2_000.0;
/// Outage window start within each period, ms.
const OUTAGE_START_MS: f64 = 1_500.0;
/// Outage window length, ms.
const OUTAGE_LEN_MS: f64 = 150.0;

/// Selectable network fault scenario for the FI path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetScenario {
    /// No fault plane: the lossless constant-latency model.
    None,
    /// Baseline testbed WLAN (independent 0.3 % loss).
    Wifi,
    /// Gilbert–Elliott burst loss.
    BurstLoss,
    /// Occasional large queueing delays.
    LatencySpikes,
    /// Periodic transient relay outages.
    RelayOutage,
}

impl NetScenario {
    /// Every scenario, in catalog order.
    pub const ALL: [NetScenario; 5] = [
        NetScenario::None,
        NetScenario::Wifi,
        NetScenario::BurstLoss,
        NetScenario::LatencySpikes,
        NetScenario::RelayOutage,
    ];

    /// The CLI name (`experiments fleet --net <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            NetScenario::None => "none",
            NetScenario::Wifi => "wifi",
            NetScenario::BurstLoss => "burst-loss",
            NetScenario::LatencySpikes => "latency-spikes",
            NetScenario::RelayOutage => "relay-outage",
        }
    }

    /// Parses a CLI name; `None` (the Option) for unknown names.
    pub fn parse(name: &str) -> Option<NetScenario> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether the scenario can drop or delay packets at all. `false`
    /// only for [`NetScenario::None`], which keeps consumers on their
    /// lossless constant-latency path bit-for-bit.
    pub fn is_lossy(&self) -> bool {
        !matches!(self, NetScenario::None)
    }
}

impl std::fmt::Display for NetScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-player FI datagram channel under a fault scenario.
///
/// Wraps the seeded base [`DatagramChannel`] (which supplies latency,
/// jitter and independent background loss) and layers the scenario's
/// fault process on top. Fully deterministic: the same `(scenario,
/// seed)` pair and the same sequence of `send_at` times reproduce the
/// same deliveries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiChannel {
    scenario: NetScenario,
    inner: DatagramChannel,
    fault_rng: DeterministicRng,
    ge_bad: bool,
    sent: u64,
    lost: u64,
}

impl FiChannel {
    /// Creates the channel for one player.
    pub fn new(scenario: NetScenario, seed: u64) -> Self {
        FiChannel {
            scenario,
            inner: DatagramChannel::wifi_fi(seed),
            fault_rng: DeterministicRng::new(seed ^ 0xFA_07_5C_EA_7E_57_10_55),
            ge_bad: false,
            sent: 0,
            lost: 0,
        }
    }

    /// The channel's scenario.
    pub fn scenario(&self) -> NetScenario {
        self.scenario
    }

    /// Whether `now_ms` falls inside a relay outage window.
    fn in_outage(now_ms: f64) -> bool {
        let phase = now_ms.rem_euclid(OUTAGE_PERIOD_MS);
        (OUTAGE_START_MS..OUTAGE_START_MS + OUTAGE_LEN_MS).contains(&phase)
    }

    /// Sends one datagram at simulated time `now_ms`.
    pub fn send_at(&mut self, now_ms: f64) -> Delivery {
        self.sent += 1;
        match self.scenario {
            NetScenario::RelayOutage if Self::in_outage(now_ms) => {
                self.lost += 1;
                return Delivery::Lost;
            }
            NetScenario::BurstLoss => {
                // Evolve the Gilbert–Elliott chain one step per packet.
                let p = self.fault_rng.next_f64();
                if self.ge_bad {
                    if p < GE_BAD_TO_GOOD {
                        self.ge_bad = false;
                    }
                } else if p < GE_GOOD_TO_BAD {
                    self.ge_bad = true;
                }
                if self.ge_bad && self.fault_rng.next_f64() < GE_BAD_LOSS {
                    self.lost += 1;
                    return Delivery::Lost;
                }
            }
            _ => {}
        }
        match self.inner.send() {
            Delivery::Lost => {
                self.lost += 1;
                Delivery::Lost
            }
            Delivery::Delivered { latency_ms } => {
                let latency_ms = if matches!(self.scenario, NetScenario::LatencySpikes)
                    && self.fault_rng.next_f64() < SPIKE_PROB
                {
                    latency_ms + SPIKE_MS
                } else {
                    latency_ms
                };
                Delivery::Delivered { latency_ms }
            }
        }
    }

    /// One state-sync round trip through the relay starting at `now_ms`:
    /// client → relay → peers, two hops plus relay processing. `None`
    /// when either hop is lost.
    pub fn relay_sync_at(&mut self, now_ms: f64) -> Option<f64> {
        let up = self.send_at(now_ms).latency_ms()?;
        let down = self.send_at(now_ms + up + RELAY_PROCESS_MS).latency_ms()?;
        Some(up + RELAY_PROCESS_MS + down)
    }

    /// Packets sent so far (including scenario drops).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets lost so far (scenario drops plus background loss).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in NetScenario::ALL {
            assert_eq!(NetScenario::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(NetScenario::parse("bogus"), None);
        assert!(!NetScenario::None.is_lossy());
        assert!(NetScenario::BurstLoss.is_lossy());
    }

    #[test]
    fn channel_is_deterministic() {
        for scenario in NetScenario::ALL {
            let mut a = FiChannel::new(scenario, 9);
            let mut b = FiChannel::new(scenario, 9);
            for i in 0..2000 {
                let t = i as f64 * 16.7;
                assert_eq!(a.send_at(t), b.send_at(t), "{scenario} diverged at {i}");
            }
            assert_eq!(a.sent(), 2000);
            assert_eq!(a.lost(), b.lost());
        }
    }

    #[test]
    fn burst_loss_is_bursty() {
        // Same overall send count: the GE chain must produce *runs* of
        // loss — the longest run should far exceed what independent
        // 0.3 % loss ever shows.
        let mut ch = FiChannel::new(NetScenario::BurstLoss, 3);
        let mut longest = 0u32;
        let mut run = 0u32;
        for i in 0..20_000 {
            match ch.send_at(i as f64) {
                Delivery::Lost => {
                    run += 1;
                    longest = longest.max(run);
                }
                Delivery::Delivered { .. } => run = 0,
            }
        }
        assert!(longest >= 3, "longest loss run {longest}");
        let ratio = ch.loss_ratio();
        assert!(
            (0.01..0.15).contains(&ratio),
            "burst scenario loss {ratio:.4}"
        );
    }

    #[test]
    fn latency_spikes_exceed_jitter_band() {
        let mut ch = FiChannel::new(NetScenario::LatencySpikes, 5);
        let mut spiked = 0u32;
        for i in 0..5000 {
            if let Some(l) = ch.send_at(i as f64).latency_ms() {
                if l > 10.0 {
                    spiked += 1;
                }
            }
        }
        assert!(spiked > 50, "only {spiked} spikes in 5000 sends");
    }

    #[test]
    fn relay_outage_drops_everything_in_window() {
        let mut ch = FiChannel::new(NetScenario::RelayOutage, 7);
        // Inside the window every send is lost, regardless of seed.
        for i in 0..50 {
            let t = OUTAGE_START_MS + i as f64 * (OUTAGE_LEN_MS / 50.0) * 0.99;
            assert_eq!(ch.send_at(t), Delivery::Lost, "t={t}");
        }
        // Outside the window the channel behaves like the baseline.
        let mut delivered = 0;
        for i in 0..200 {
            if ch
                .send_at(i as f64 * 5.0 % OUTAGE_START_MS)
                .latency_ms()
                .is_some()
            {
                delivered += 1;
            }
        }
        assert!(delivered > 150, "{delivered}/200 delivered off-window");
    }

    #[test]
    fn wifi_matches_base_channel_statistics() {
        let mut ch = FiChannel::new(NetScenario::Wifi, 11);
        let mut total = 0.0;
        let mut n = 0u32;
        for i in 0..4000 {
            if let Some(ms) = ch.relay_sync_at(i as f64 * 16.7) {
                total += ms;
                n += 1;
            }
        }
        let mean = total / n as f64;
        assert!((2.0..3.2).contains(&mean), "mean sync {mean:.2} ms");
        let ratio = ch.loss_ratio();
        assert!(ratio < 0.01, "baseline loss {ratio:.4}");
    }
}
