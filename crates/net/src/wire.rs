//! The serving-plane wire protocol: length-prefixed session messages.
//!
//! `coterie-server` and its load-generator client speak this protocol
//! over TCP or Unix-domain stream sockets. Every message travels in one
//! *frame*:
//!
//! ```text
//! frame := len:u32le  body
//! body  := type:u8    payload
//! ```
//!
//! `len` counts the body bytes (type byte included) and is capped at
//! [`MAX_BODY_BYTES`] so a malformed or hostile peer cannot make the
//! receiver buffer unboundedly. All integers are little-endian;
//! floating-point fields travel as IEEE-754 bit patterns.
//!
//! The session state machine is deliberately small:
//!
//! 1. client → [`WireMessage::Hello`] (protocol version, game, room);
//! 2. server → [`WireMessage::Welcome`] (assigned player id, budget);
//! 3. client → [`WireMessage::Pose`] per display interval, server →
//!    [`WireMessage::Frame`] with the encoded far-BE payload, with
//!    [`WireMessage::Degrade`] notices interleaved when the room's
//!    quality controller changes the scale;
//! 4. client → [`WireMessage::Bye`], server → [`WireMessage::Goodbye`]
//!    and a flush-then-close.
//!
//! [`FrameAssembler`] is the incremental receive half: feed it whatever
//! the socket produced and pull complete messages out. It never copies
//! more than once and never holds more than one maximum-size frame plus
//! one read's worth of bytes.

use coterie_world::GameId;

/// Protocol revision carried in [`WireMessage::Hello`].
pub const PROTO_VERSION: u16 = 1;

/// Hard cap on one frame's body, bytes. Far-BE payloads at our render
/// resolutions are tens of KB; 4 MiB leaves room for any realistic
/// quality scale while bounding a malicious length prefix.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Length-prefix size, bytes.
pub const HEADER_BYTES: usize = 4;

/// Message type tags (the first body byte).
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const POSE: u8 = 0x03;
    pub const FRAME: u8 = 0x04;
    pub const DEGRADE: u8 = 0x05;
    pub const BYE: u8 = 0x06;
    pub const GOODBYE: u8 = 0x07;
    pub const ERROR: u8 = 0x08;
}

/// Why a peer was told to go away ([`WireMessage::Goodbye`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByeReason {
    /// Clean end of session (client sent [`WireMessage::Bye`]).
    Normal = 0,
    /// The server is shutting down and draining connections.
    Shutdown = 1,
    /// The room rejected the join (admission control).
    AdmissionRefused = 2,
}

impl ByeReason {
    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ByeReason::Normal),
            1 => Ok(ByeReason::Shutdown),
            2 => Ok(ByeReason::AdmissionRefused),
            _ => Err(WireError::BadValue("bye reason")),
        }
    }
}

/// Protocol-level error codes ([`WireMessage::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer spoke a protocol revision we do not.
    BadVersion = 0,
    /// A message arrived that the session state does not allow (e.g. a
    /// pose before the hello).
    BadState = 1,
    /// A message failed to decode.
    Malformed = 2,
}

impl ErrorCode {
    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ErrorCode::BadVersion),
            1 => Ok(ErrorCode::BadState),
            2 => Ok(ErrorCode::Malformed),
            _ => Err(WireError::BadValue("error code")),
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Client session request: join `room` of `game`.
    Hello {
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u16,
        /// Game the client wants to play.
        game: GameId,
        /// Room id the client wants to join.
        room: u32,
        /// Client-chosen seed (lets the server tell load-gen cohorts
        /// apart in traces; no protocol semantics).
        seed: u64,
    },
    /// Server accepts the hello.
    Welcome {
        /// Room actually joined.
        room: u32,
        /// Player id assigned within the room.
        player: u32,
        /// The vsync budget the room is serving against, ms.
        budget_ms: f64,
    },
    /// Client pose update; the server answers with a [`WireMessage::Frame`].
    Pose {
        /// Client frame sequence number (echoed back).
        seq: u64,
        /// Client session clock, ms.
        t_ms: f64,
        /// World x, meters.
        x: f64,
        /// World z, meters.
        z: f64,
        /// Heading, radians.
        yaw: f64,
    },
    /// Far-BE frame delivery.
    Frame {
        /// Echo of the pose's sequence number.
        seq: u64,
        /// Encoded frame width, px.
        width: u32,
        /// Encoded frame height, px.
        height: u32,
        /// Codec quality code (0 = CRF18, 1 = CRF25, 2 = CRF32).
        quality: u8,
        /// Whether the frame came from the shared store (vs rendered
        /// on demand for this request).
        store_hit: bool,
        /// Quality scale the frame was produced at, per-mille.
        scale_pm: u16,
        /// The codec-encoded payload.
        payload: Vec<u8>,
    },
    /// Quality-degrade (or recovery) notice from the room controller.
    Degrade {
        /// New quality scale, per-mille of full quality.
        scale_pm: u16,
    },
    /// Client requests a clean close.
    Bye,
    /// Server closes the session after flushing.
    Goodbye {
        /// Why.
        reason: ByeReason,
    },
    /// Protocol error report (either direction, best-effort).
    Error {
        /// What kind.
        code: ErrorCode,
    },
}

/// Decode/stream errors. Any of these on a live connection is a
/// protocol violation; the peer should be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A length prefix exceeded [`MAX_BODY_BYTES`].
    Oversize(usize),
    /// A frame body was empty (no type byte).
    EmptyBody,
    /// A complete frame's payload was shorter than its message needs.
    Truncated,
    /// A complete frame's payload was longer than its message allows.
    TrailingBytes,
    /// Unknown message type byte.
    UnknownType(u8),
    /// Unknown game id on the wire.
    BadGame(u8),
    /// A field held a value outside its domain.
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversize(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::EmptyBody => write!(f, "frame with empty body"),
            WireError::Truncated => write!(f, "message payload truncated"),
            WireError::TrailingBytes => write!(f, "message payload has trailing bytes"),
            WireError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::BadGame(g) => write!(f, "unknown game id {g}"),
            WireError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Stable wire code of a game (its index in [`GameId::ALL`]).
pub fn game_to_wire(game: GameId) -> u8 {
    GameId::ALL
        .iter()
        .position(|&g| g == game)
        .expect("every game is in GameId::ALL") as u8
}

/// Decodes a wire game code.
pub fn game_from_wire(code: u8) -> Result<GameId, WireError> {
    GameId::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::BadGame(code))
}

// --- encode ---------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

impl WireMessage {
    /// Serializes the message body (type byte + payload, no length
    /// prefix) into `out`.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Hello {
                proto,
                game,
                room,
                seed,
            } => {
                out.push(tag::HELLO);
                put_u16(out, *proto);
                out.push(game_to_wire(*game));
                put_u32(out, *room);
                put_u64(out, *seed);
            }
            WireMessage::Welcome {
                room,
                player,
                budget_ms,
            } => {
                out.push(tag::WELCOME);
                put_u32(out, *room);
                put_u32(out, *player);
                put_f64(out, *budget_ms);
            }
            WireMessage::Pose {
                seq,
                t_ms,
                x,
                z,
                yaw,
            } => {
                out.push(tag::POSE);
                put_u64(out, *seq);
                put_f64(out, *t_ms);
                put_f64(out, *x);
                put_f64(out, *z);
                put_f64(out, *yaw);
            }
            WireMessage::Frame {
                seq,
                width,
                height,
                quality,
                store_hit,
                scale_pm,
                payload,
            } => {
                out.push(tag::FRAME);
                put_u64(out, *seq);
                put_u32(out, *width);
                put_u32(out, *height);
                out.push(*quality);
                out.push(u8::from(*store_hit));
                put_u16(out, *scale_pm);
                out.extend_from_slice(payload);
            }
            WireMessage::Degrade { scale_pm } => {
                out.push(tag::DEGRADE);
                put_u16(out, *scale_pm);
            }
            WireMessage::Bye => out.push(tag::BYE),
            WireMessage::Goodbye { reason } => {
                out.push(tag::GOODBYE);
                out.push(*reason as u8);
            }
            WireMessage::Error { code } => {
                out.push(tag::ERROR);
                out.push(*code as u8);
            }
        }
    }

    /// Serializes a complete wire frame (length prefix + body).
    ///
    /// # Panics
    ///
    /// Panics if the body would exceed [`MAX_BODY_BYTES`] — senders
    /// construct payloads well under the cap, so an oversize frame is a
    /// programming error, not a runtime condition.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&[0u8; HEADER_BYTES]);
        self.encode_body(&mut out);
        let body_len = out.len() - HEADER_BYTES;
        assert!(
            body_len <= MAX_BODY_BYTES,
            "outgoing frame body of {body_len} bytes exceeds the wire cap"
        );
        out[..HEADER_BYTES].copy_from_slice(&(body_len as u32).to_le_bytes());
        out
    }

    /// Decodes one complete frame body (type byte + payload).
    pub fn decode_body(body: &[u8]) -> Result<WireMessage, WireError> {
        let (&t, rest) = body.split_first().ok_or(WireError::EmptyBody)?;
        let mut r = Reader { buf: rest, pos: 0 };
        let msg = match t {
            tag::HELLO => {
                let proto = r.u16()?;
                let game = game_from_wire(r.u8()?)?;
                let room = r.u32()?;
                let seed = r.u64()?;
                WireMessage::Hello {
                    proto,
                    game,
                    room,
                    seed,
                }
            }
            tag::WELCOME => WireMessage::Welcome {
                room: r.u32()?,
                player: r.u32()?,
                budget_ms: r.finite_f64("budget_ms")?,
            },
            tag::POSE => WireMessage::Pose {
                seq: r.u64()?,
                t_ms: r.finite_f64("t_ms")?,
                x: r.finite_f64("x")?,
                z: r.finite_f64("z")?,
                yaw: r.finite_f64("yaw")?,
            },
            tag::FRAME => {
                let seq = r.u64()?;
                let width = r.u32()?;
                let height = r.u32()?;
                if width == 0 || height == 0 {
                    return Err(WireError::BadValue("frame dims"));
                }
                let quality = r.u8()?;
                if quality > 2 {
                    return Err(WireError::BadValue("quality code"));
                }
                let store_hit = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadValue("store_hit flag")),
                };
                let scale_pm = r.u16()?;
                if scale_pm == 0 || scale_pm > 1000 {
                    return Err(WireError::BadValue("scale per-mille"));
                }
                let payload = r.rest().to_vec();
                // A zero-length payload is indistinguishable from a
                // truncated encode on the receive side; encoders always
                // produce at least one byte, so reject it outright
                // rather than conflating it with "need more bytes".
                if payload.is_empty() {
                    return Err(WireError::BadValue("frame payload"));
                }
                return Ok(WireMessage::Frame {
                    seq,
                    width,
                    height,
                    quality,
                    store_hit,
                    scale_pm,
                    payload,
                });
            }
            tag::DEGRADE => {
                let scale_pm = r.u16()?;
                if scale_pm == 0 || scale_pm > 1000 {
                    return Err(WireError::BadValue("scale per-mille"));
                }
                WireMessage::Degrade { scale_pm }
            }
            tag::BYE => WireMessage::Bye,
            tag::GOODBYE => WireMessage::Goodbye {
                reason: ByeReason::from_wire(r.u8()?)?,
            },
            tag::ERROR => WireMessage::Error {
                code: ErrorCode::from_wire(r.u8()?)?,
            },
            other => return Err(WireError::UnknownType(other)),
        };
        if r.pos != r.buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }
}

/// Bounds-checked little-endian field reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An f64 that must be finite on the wire (poses and budgets are
    /// physical quantities; NaN/inf only ever arrive from corruption).
    fn finite_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = f64::from_bits(self.u64()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::BadValue(what))
        }
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

// --- incremental framing --------------------------------------------------

/// Incremental receive-side framer.
///
/// Feed raw socket bytes with [`FrameAssembler::push`], then drain
/// complete messages with [`FrameAssembler::next_message`]. The
/// assembler compacts its buffer as frames complete, so steady-state
/// memory is one partial frame plus the last read.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, data: &[u8]) {
        // Compact before growing so the buffer never retains an
        // unbounded consumed prefix.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] means the stream is corrupt; the connection
    /// should be closed (the assembler makes no attempt to resync).
    pub fn next_message(&mut self) -> Result<Option<WireMessage>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(avail[..HEADER_BYTES].try_into().unwrap()) as usize;
        if body_len > MAX_BODY_BYTES {
            return Err(WireError::Oversize(body_len));
        }
        if avail.len() < HEADER_BYTES + body_len {
            return Ok(None);
        }
        let body = &avail[HEADER_BYTES..HEADER_BYTES + body_len];
        let msg = WireMessage::decode_body(body)?;
        self.start += HEADER_BYTES + body_len;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::Hello {
                proto: PROTO_VERSION,
                game: GameId::VikingVillage,
                room: 3,
                seed: 0xDEAD_BEEF,
            },
            WireMessage::Welcome {
                room: 3,
                player: 1,
                budget_ms: 16.7,
            },
            WireMessage::Pose {
                seq: 42,
                t_ms: 700.25,
                x: -3.5,
                z: 12.0,
                yaw: 1.25,
            },
            WireMessage::Frame {
                seq: 42,
                width: 128,
                height: 64,
                quality: 1,
                store_hit: true,
                scale_pm: 750,
                payload: vec![1, 2, 3, 4, 5],
            },
            WireMessage::Degrade { scale_pm: 562 },
            WireMessage::Bye,
            WireMessage::Goodbye {
                reason: ByeReason::Shutdown,
            },
            WireMessage::Error {
                code: ErrorCode::BadState,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = msg.encode_frame();
            let body = &frame[HEADER_BYTES..];
            assert_eq!(WireMessage::decode_body(body).unwrap(), msg);
        }
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.push(&[b]);
            while let Some(m) = asm.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn oversize_length_prefix_is_rejected() {
        let mut asm = FrameAssembler::new();
        asm.push(&(MAX_BODY_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(
            asm.next_message(),
            Err(WireError::Oversize(MAX_BODY_BYTES + 1))
        );
    }

    #[test]
    fn empty_body_is_rejected() {
        let mut asm = FrameAssembler::new();
        asm.push(&0u32.to_le_bytes());
        assert_eq!(asm.next_message(), Err(WireError::EmptyBody));
    }

    #[test]
    fn truncated_pose_is_rejected() {
        let pose = WireMessage::Pose {
            seq: 1,
            t_ms: 0.0,
            x: 0.0,
            z: 0.0,
            yaw: 0.0,
        };
        let frame = pose.encode_frame();
        // Chop the last payload byte and fix the length prefix.
        let body = &frame[HEADER_BYTES..frame.len() - 1];
        assert_eq!(WireMessage::decode_body(body), Err(WireError::Truncated));
    }

    #[test]
    fn non_finite_pose_is_rejected() {
        let mut body = vec![0x03u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        assert_eq!(
            WireMessage::decode_body(&body),
            Err(WireError::BadValue("t_ms"))
        );
    }

    #[test]
    fn game_codes_are_stable_and_total() {
        for game in GameId::ALL {
            assert_eq!(game_from_wire(game_to_wire(game)).unwrap(), game);
        }
        assert_eq!(game_from_wire(200), Err(WireError::BadGame(200)));
    }
}
