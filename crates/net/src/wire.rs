//! The serving-plane wire protocol: length-prefixed session messages.
//!
//! `coterie-server` and its load-generator client speak this protocol
//! over TCP or Unix-domain stream sockets. Every message travels in one
//! *frame*:
//!
//! ```text
//! frame := len:u32le  body
//! body  := type:u8    payload
//! ```
//!
//! `len` counts the body bytes (type byte included) and is capped at
//! [`MAX_BODY_BYTES`] so a malformed or hostile peer cannot make the
//! receiver buffer unboundedly. All integers are little-endian;
//! floating-point fields travel as IEEE-754 bit patterns.
//!
//! The session state machine is deliberately small:
//!
//! 1. client → [`WireMessage::Hello`] (protocol version, game, room);
//! 2. server → [`WireMessage::Welcome`] (assigned player id, budget);
//! 3. client → [`WireMessage::Pose`] per display interval, server →
//!    [`WireMessage::Frame`] with the encoded far-BE payload, with
//!    [`WireMessage::Degrade`] notices interleaved when the room's
//!    quality controller changes the scale;
//! 4. client → [`WireMessage::Bye`], server → [`WireMessage::Goodbye`]
//!    and a flush-then-close.
//!
//! [`FrameAssembler`] is the incremental receive half: feed it whatever
//! the socket produced and pull complete messages out. It never copies
//! more than once and never holds more than one maximum-size frame plus
//! one read's worth of bytes.

use coterie_world::GameId;

/// Protocol revision carried in [`WireMessage::Hello`].
///
/// v1: the session family (tags `0x01`–`0x08`). v2 adds the
/// inter-shard family in its own reserved type-byte range (`0x40+`)
/// and the structured [`WireMessage::VersionReject`] reply; every v1
/// message encodes byte-identically under v2, so v1 clients keep
/// decoding session traffic cleanly. v3 adds session resumption:
/// [`WireMessage::Welcome`] may carry an opaque signed reconnect
/// token as a fixed-length tail (only ever sent to v3 clients, so
/// v1/v2 Welcome bytes are unchanged), and the session-control range
/// gains [`WireMessage::Resume`] / [`WireMessage::ResumeReject`].
pub const PROTO_VERSION: u16 = 3;

/// Oldest protocol revision the server still accepts in a
/// [`WireMessage::Hello`] / [`WireMessage::ShardHello`].
pub const MIN_PROTO_VERSION: u16 = 1;

/// Hard cap on one frame's body, bytes. Far-BE payloads at our render
/// resolutions are tens of KB; 4 MiB leaves room for any realistic
/// quality scale while bounding a malicious length prefix.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Length-prefix size, bytes.
pub const HEADER_BYTES: usize = 4;

/// Message type tags (the first body byte).
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const POSE: u8 = 0x03;
    pub const FRAME: u8 = 0x04;
    pub const DEGRADE: u8 = 0x05;
    pub const BYE: u8 = 0x06;
    pub const GOODBYE: u8 = 0x07;
    pub const ERROR: u8 = 0x08;
    // v2 additions. 0x10–0x3f: session-control extensions.
    pub const VERSION_REJECT: u8 = 0x10;
    // v3 additions (session resumption).
    pub const RESUME: u8 = 0x11;
    pub const RESUME_REJECT: u8 = 0x12;
    // 0x40–0x4f: the inter-shard family (worker ↔ worker only; never
    // sent to game clients).
    pub const SHARD_HELLO: u8 = 0x40;
    pub const SHARD_ADVERT: u8 = 0x41;
    pub const SHARD_USAGE: u8 = 0x42;
    pub const SHARD_FRAME: u8 = 0x43;
}

/// Decode-side cap on the entries of one [`WireMessage::ShardAdvert`],
/// so a hostile peer cannot force a huge allocation from a small
/// frame. Senders batch well under this (the store's advert buffer
/// caps at 1024 and exchanges drain per epoch in smaller chunks).
pub const MAX_SHARD_ENTRIES: usize = 4096;

/// Exact size of a reconnect token on the wire, bytes: the session
/// identity (`game:u8 room:u32 player:u32 issued_ms:u64`) plus a
/// 64-bit MAC. Tokens are opaque to clients — they echo the bytes
/// back verbatim in [`WireMessage::Resume`] — but the decoder still
/// enforces the length so a truncated token is caught at the framing
/// layer instead of the session layer.
pub const TOKEN_BYTES: usize = 25;

/// Why a peer was told to go away ([`WireMessage::Goodbye`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByeReason {
    /// Clean end of session (client sent [`WireMessage::Bye`]).
    Normal = 0,
    /// The server is shutting down and draining connections.
    Shutdown = 1,
    /// The room rejected the join (admission control).
    AdmissionRefused = 2,
}

impl ByeReason {
    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ByeReason::Normal),
            1 => Ok(ByeReason::Shutdown),
            2 => Ok(ByeReason::AdmissionRefused),
            _ => Err(WireError::BadValue("bye reason")),
        }
    }
}

/// Protocol-level error codes ([`WireMessage::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer spoke a protocol revision we do not.
    BadVersion = 0,
    /// A message arrived that the session state does not allow (e.g. a
    /// pose before the hello).
    BadState = 1,
    /// A message failed to decode.
    Malformed = 2,
}

impl ErrorCode {
    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ErrorCode::BadVersion),
            1 => Ok(ErrorCode::BadState),
            2 => Ok(ErrorCode::Malformed),
            _ => Err(WireError::BadValue("error code")),
        }
    }
}

/// Why a [`WireMessage::Resume`] was refused ([`WireMessage::ResumeReject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeRejectReason {
    /// The token was valid once but its TTL has elapsed (or the parked
    /// session state was already reclaimed).
    Expired = 0,
    /// The token does not correspond to any session this server parked.
    Unknown = 1,
    /// The token failed signature verification.
    Malformed = 2,
}

impl ResumeRejectReason {
    fn from_wire(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ResumeRejectReason::Expired),
            1 => Ok(ResumeRejectReason::Unknown),
            2 => Ok(ResumeRejectReason::Malformed),
            _ => Err(WireError::BadValue("resume reject reason")),
        }
    }
}

/// One hot store entry advertised between shard workers: everything a
/// peer needs to replicate the frame's *identity* (the three lookup
/// criteria) plus the recency/value state that keeps the fleet-wide
/// LRU coherent. Payload bytes travel separately (in
/// [`WireMessage::ShardFrame`]) and only for entries hot enough to
/// replicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardEntry {
    /// Game the frame belongs to.
    pub game: GameId,
    /// Grid x index of the rendering position.
    pub grid_ix: i32,
    /// Grid z index of the rendering position.
    pub grid_iz: i32,
    /// Exact world x the frame was rendered at, meters.
    pub pos_x: f64,
    /// Exact world z the frame was rendered at, meters.
    pub pos_z: f64,
    /// Leaf region id (criterion 2).
    pub leaf: u32,
    /// Near-BE object-set hash (criterion 3).
    pub near_hash: u64,
    /// Payload size, bytes (budget accounting on the replica side).
    pub bytes: u64,
    /// Global-clock access stamp (fleet-wide LRU ordering).
    pub stamp: u64,
    /// Admission value (predicted reuse × render cost).
    pub value: f64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Client session request: join `room` of `game`.
    Hello {
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u16,
        /// Game the client wants to play.
        game: GameId,
        /// Room id the client wants to join.
        room: u32,
        /// Client-chosen seed (lets the server tell load-gen cohorts
        /// apart in traces; no protocol semantics).
        seed: u64,
    },
    /// Server accepts the hello.
    Welcome {
        /// Room actually joined.
        room: u32,
        /// Player id assigned within the room.
        player: u32,
        /// The vsync budget the room is serving against, ms.
        budget_ms: f64,
        /// Opaque signed reconnect token (v3). Encoded as a
        /// fixed-length tail only when present, so a `None` Welcome is
        /// byte-identical to the v1/v2 encoding and pre-v3 clients
        /// never see (or need to skip) the field.
        token: Option<[u8; TOKEN_BYTES]>,
    },
    /// Client pose update; the server answers with a [`WireMessage::Frame`].
    Pose {
        /// Client frame sequence number (echoed back).
        seq: u64,
        /// Client session clock, ms.
        t_ms: f64,
        /// World x, meters.
        x: f64,
        /// World z, meters.
        z: f64,
        /// Heading, radians.
        yaw: f64,
    },
    /// Far-BE frame delivery.
    Frame {
        /// Echo of the pose's sequence number.
        seq: u64,
        /// Encoded frame width, px.
        width: u32,
        /// Encoded frame height, px.
        height: u32,
        /// Codec quality code (0 = CRF18, 1 = CRF25, 2 = CRF32).
        quality: u8,
        /// Whether the frame came from the shared store (vs rendered
        /// on demand for this request).
        store_hit: bool,
        /// Quality scale the frame was produced at, per-mille.
        scale_pm: u16,
        /// The codec-encoded payload.
        payload: Vec<u8>,
    },
    /// Quality-degrade (or recovery) notice from the room controller.
    Degrade {
        /// New quality scale, per-mille of full quality.
        scale_pm: u16,
    },
    /// Client requests a clean close.
    Bye,
    /// Server closes the session after flushing.
    Goodbye {
        /// Why.
        reason: ByeReason,
    },
    /// Protocol error report (either direction, best-effort).
    Error {
        /// What kind.
        code: ErrorCode,
    },
    /// Structured version-negotiation failure: the server's reply to a
    /// hello whose `proto` falls outside `[min, max]`, telling the
    /// client exactly which revisions it *does* speak instead of a
    /// bare [`WireMessage::Error`] drop.
    VersionReject {
        /// Oldest revision the server accepts.
        min: u16,
        /// Newest revision the server accepts.
        max: u16,
    },
    /// Client asks to resume a dropped session (v3): instead of a
    /// fresh [`WireMessage::Hello`], it presents the token from its
    /// last Welcome. Within the TTL the server re-attaches the parked
    /// session (same room, player id, and quality level) and answers
    /// with a [`WireMessage::Welcome`]; otherwise it answers with a
    /// [`WireMessage::ResumeReject`].
    Resume {
        /// Protocol revision ([`PROTO_VERSION`]; resumption needs ≥ 3).
        proto: u16,
        /// The token bytes from the original Welcome, verbatim.
        token: [u8; TOKEN_BYTES],
    },
    /// Structured resume failure (v3): the token was expired, unknown,
    /// or forged. The client should fall back to a fresh hello.
    ResumeReject {
        /// Why.
        reason: ResumeRejectReason,
    },
    /// Shard-worker handshake: worker `shard` of a `shards`-wide fleet
    /// introduces itself on an inter-shard connection (proto-checked
    /// like a session hello; answered with [`WireMessage::VersionReject`]
    /// on mismatch).
    ShardHello {
        /// Protocol revision ([`PROTO_VERSION`]).
        proto: u16,
        /// The sender's shard index.
        shard: u16,
        /// Fleet width the sender believes in (peers must agree).
        shards: u16,
        /// The sender's current exchange epoch.
        epoch: u64,
    },
    /// Epoch-batched hot-entry metadata advert: the entries this owner
    /// inserted since its last exchange, for peers to replicate into
    /// their hot-replica caches.
    ShardAdvert {
        /// Advertising shard.
        shard: u16,
        /// Exchange epoch the batch closes.
        epoch: u64,
        /// The advertised entries (capped at [`MAX_SHARD_ENTRIES`]).
        entries: Vec<ShardEntry>,
    },
    /// Anti-entropy usage digest: one shard's LRU/byte-budget state,
    /// exchanged every epoch so eviction can stay globally coherent
    /// without shipping entry lists.
    ShardUsage {
        /// Reporting shard.
        shard: u16,
        /// Exchange epoch the digest closes.
        epoch: u64,
        /// Cached payload bytes the shard holds.
        bytes: u64,
        /// The shard's view of the shared global clock.
        clock: u64,
        /// Access stamp of the shard's oldest entry (`u64::MAX` when
        /// the shard is empty).
        oldest_stamp: u64,
    },
    /// Replicated frame payload: an owner pushes a hot frame (identity
    /// plus encoded bytes) to a peer's replica cache so the peer's
    /// next lookup is a local hit instead of a forward.
    ShardFrame {
        /// Sending (owner) shard.
        shard: u16,
        /// The frame's store identity and recency state.
        entry: ShardEntry,
        /// Encoded frame width, px.
        width: u32,
        /// Encoded frame height, px.
        height: u32,
        /// Codec quality code (0 = CRF18, 1 = CRF25, 2 = CRF32).
        quality: u8,
        /// Quality scale the frame was produced at, per-mille.
        scale_pm: u16,
        /// The codec-encoded payload.
        payload: Vec<u8>,
    },
}

/// Decode/stream errors. Any of these on a live connection is a
/// protocol violation; the peer should be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A length prefix exceeded [`MAX_BODY_BYTES`].
    Oversize(usize),
    /// A frame body was empty (no type byte).
    EmptyBody,
    /// A complete frame's payload was shorter than its message needs.
    Truncated,
    /// A complete frame's payload was longer than its message allows.
    TrailingBytes,
    /// Unknown message type byte.
    UnknownType(u8),
    /// Unknown game id on the wire.
    BadGame(u8),
    /// A field held a value outside its domain.
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversize(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::EmptyBody => write!(f, "frame with empty body"),
            WireError::Truncated => write!(f, "message payload truncated"),
            WireError::TrailingBytes => write!(f, "message payload has trailing bytes"),
            WireError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::BadGame(g) => write!(f, "unknown game id {g}"),
            WireError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Stable wire code of a game (its index in [`GameId::ALL`]).
pub fn game_to_wire(game: GameId) -> u8 {
    GameId::ALL
        .iter()
        .position(|&g| g == game)
        .expect("every game is in GameId::ALL") as u8
}

/// Decodes a wire game code.
pub fn game_from_wire(code: u8) -> Result<GameId, WireError> {
    GameId::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::BadGame(code))
}

// --- encode ---------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_entry(out: &mut Vec<u8>, e: &ShardEntry) {
    out.push(game_to_wire(e.game));
    put_i32(out, e.grid_ix);
    put_i32(out, e.grid_iz);
    put_f64(out, e.pos_x);
    put_f64(out, e.pos_z);
    put_u32(out, e.leaf);
    put_u64(out, e.near_hash);
    put_u64(out, e.bytes);
    put_u64(out, e.stamp);
    put_f64(out, e.value);
}

impl WireMessage {
    /// Serializes the message body (type byte + payload, no length
    /// prefix) into `out`.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Hello {
                proto,
                game,
                room,
                seed,
            } => {
                out.push(tag::HELLO);
                put_u16(out, *proto);
                out.push(game_to_wire(*game));
                put_u32(out, *room);
                put_u64(out, *seed);
            }
            WireMessage::Welcome {
                room,
                player,
                budget_ms,
                token,
            } => {
                out.push(tag::WELCOME);
                put_u32(out, *room);
                put_u32(out, *player);
                put_f64(out, *budget_ms);
                if let Some(token) = token {
                    out.extend_from_slice(token);
                }
            }
            WireMessage::Pose {
                seq,
                t_ms,
                x,
                z,
                yaw,
            } => {
                out.push(tag::POSE);
                put_u64(out, *seq);
                put_f64(out, *t_ms);
                put_f64(out, *x);
                put_f64(out, *z);
                put_f64(out, *yaw);
            }
            WireMessage::Frame {
                seq,
                width,
                height,
                quality,
                store_hit,
                scale_pm,
                payload,
            } => {
                out.push(tag::FRAME);
                put_u64(out, *seq);
                put_u32(out, *width);
                put_u32(out, *height);
                out.push(*quality);
                out.push(u8::from(*store_hit));
                put_u16(out, *scale_pm);
                out.extend_from_slice(payload);
            }
            WireMessage::Degrade { scale_pm } => {
                out.push(tag::DEGRADE);
                put_u16(out, *scale_pm);
            }
            WireMessage::Bye => out.push(tag::BYE),
            WireMessage::Goodbye { reason } => {
                out.push(tag::GOODBYE);
                out.push(*reason as u8);
            }
            WireMessage::Error { code } => {
                out.push(tag::ERROR);
                out.push(*code as u8);
            }
            WireMessage::VersionReject { min, max } => {
                out.push(tag::VERSION_REJECT);
                put_u16(out, *min);
                put_u16(out, *max);
            }
            WireMessage::Resume { proto, token } => {
                out.push(tag::RESUME);
                put_u16(out, *proto);
                out.extend_from_slice(token);
            }
            WireMessage::ResumeReject { reason } => {
                out.push(tag::RESUME_REJECT);
                out.push(*reason as u8);
            }
            WireMessage::ShardHello {
                proto,
                shard,
                shards,
                epoch,
            } => {
                out.push(tag::SHARD_HELLO);
                put_u16(out, *proto);
                put_u16(out, *shard);
                put_u16(out, *shards);
                put_u64(out, *epoch);
            }
            WireMessage::ShardAdvert {
                shard,
                epoch,
                entries,
            } => {
                assert!(
                    entries.len() <= MAX_SHARD_ENTRIES,
                    "advert of {} entries exceeds the wire cap",
                    entries.len()
                );
                out.push(tag::SHARD_ADVERT);
                put_u16(out, *shard);
                put_u64(out, *epoch);
                put_u32(out, entries.len() as u32);
                for e in entries {
                    put_entry(out, e);
                }
            }
            WireMessage::ShardUsage {
                shard,
                epoch,
                bytes,
                clock,
                oldest_stamp,
            } => {
                out.push(tag::SHARD_USAGE);
                put_u16(out, *shard);
                put_u64(out, *epoch);
                put_u64(out, *bytes);
                put_u64(out, *clock);
                put_u64(out, *oldest_stamp);
            }
            WireMessage::ShardFrame {
                shard,
                entry,
                width,
                height,
                quality,
                scale_pm,
                payload,
            } => {
                out.push(tag::SHARD_FRAME);
                put_u16(out, *shard);
                put_entry(out, entry);
                put_u32(out, *width);
                put_u32(out, *height);
                out.push(*quality);
                put_u16(out, *scale_pm);
                out.extend_from_slice(payload);
            }
        }
    }

    /// Serializes a complete wire frame (length prefix + body).
    ///
    /// # Panics
    ///
    /// Panics if the body would exceed [`MAX_BODY_BYTES`] — senders
    /// construct payloads well under the cap, so an oversize frame is a
    /// programming error, not a runtime condition.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&[0u8; HEADER_BYTES]);
        self.encode_body(&mut out);
        let body_len = out.len() - HEADER_BYTES;
        assert!(
            body_len <= MAX_BODY_BYTES,
            "outgoing frame body of {body_len} bytes exceeds the wire cap"
        );
        out[..HEADER_BYTES].copy_from_slice(&(body_len as u32).to_le_bytes());
        out
    }

    /// Decodes one complete frame body (type byte + payload).
    pub fn decode_body(body: &[u8]) -> Result<WireMessage, WireError> {
        let (&t, rest) = body.split_first().ok_or(WireError::EmptyBody)?;
        let mut r = Reader { buf: rest, pos: 0 };
        let msg = match t {
            tag::HELLO => {
                let proto = r.u16()?;
                let game = game_from_wire(r.u8()?)?;
                let room = r.u32()?;
                let seed = r.u64()?;
                WireMessage::Hello {
                    proto,
                    game,
                    room,
                    seed,
                }
            }
            tag::WELCOME => {
                let room = r.u32()?;
                let player = r.u32()?;
                let budget_ms = r.finite_f64("budget_ms")?;
                // v3 token tail: absent (v1/v2 Welcome) or exactly
                // TOKEN_BYTES. Anything else is a framing error —
                // short means a chopped token, long means junk.
                let tail = r.rest();
                let token = match tail.len() {
                    0 => None,
                    TOKEN_BYTES => Some(tail.try_into().unwrap()),
                    n if n < TOKEN_BYTES => return Err(WireError::Truncated),
                    _ => return Err(WireError::TrailingBytes),
                };
                return Ok(WireMessage::Welcome {
                    room,
                    player,
                    budget_ms,
                    token,
                });
            }
            tag::POSE => WireMessage::Pose {
                seq: r.u64()?,
                t_ms: r.finite_f64("t_ms")?,
                x: r.finite_f64("x")?,
                z: r.finite_f64("z")?,
                yaw: r.finite_f64("yaw")?,
            },
            tag::FRAME => {
                let seq = r.u64()?;
                let width = r.u32()?;
                let height = r.u32()?;
                if width == 0 || height == 0 {
                    return Err(WireError::BadValue("frame dims"));
                }
                let quality = r.u8()?;
                if quality > 2 {
                    return Err(WireError::BadValue("quality code"));
                }
                let store_hit = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadValue("store_hit flag")),
                };
                let scale_pm = r.u16()?;
                if scale_pm == 0 || scale_pm > 1000 {
                    return Err(WireError::BadValue("scale per-mille"));
                }
                let payload = r.rest().to_vec();
                // A zero-length payload is indistinguishable from a
                // truncated encode on the receive side; encoders always
                // produce at least one byte, so reject it outright
                // rather than conflating it with "need more bytes".
                if payload.is_empty() {
                    return Err(WireError::BadValue("frame payload"));
                }
                return Ok(WireMessage::Frame {
                    seq,
                    width,
                    height,
                    quality,
                    store_hit,
                    scale_pm,
                    payload,
                });
            }
            tag::DEGRADE => {
                let scale_pm = r.u16()?;
                if scale_pm == 0 || scale_pm > 1000 {
                    return Err(WireError::BadValue("scale per-mille"));
                }
                WireMessage::Degrade { scale_pm }
            }
            tag::BYE => WireMessage::Bye,
            tag::GOODBYE => WireMessage::Goodbye {
                reason: ByeReason::from_wire(r.u8()?)?,
            },
            tag::ERROR => WireMessage::Error {
                code: ErrorCode::from_wire(r.u8()?)?,
            },
            tag::VERSION_REJECT => {
                let min = r.u16()?;
                let max = r.u16()?;
                if min > max {
                    return Err(WireError::BadValue("version range"));
                }
                WireMessage::VersionReject { min, max }
            }
            tag::RESUME => {
                let proto = r.u16()?;
                let token = r.take(TOKEN_BYTES)?.try_into().unwrap();
                WireMessage::Resume { proto, token }
            }
            tag::RESUME_REJECT => WireMessage::ResumeReject {
                reason: ResumeRejectReason::from_wire(r.u8()?)?,
            },
            tag::SHARD_HELLO => {
                let proto = r.u16()?;
                let shard = r.u16()?;
                let shards = r.u16()?;
                let epoch = r.u64()?;
                if shards == 0 || shard >= shards {
                    return Err(WireError::BadValue("shard index"));
                }
                WireMessage::ShardHello {
                    proto,
                    shard,
                    shards,
                    epoch,
                }
            }
            tag::SHARD_ADVERT => {
                let shard = r.u16()?;
                let epoch = r.u64()?;
                let count = r.u32()? as usize;
                if count > MAX_SHARD_ENTRIES {
                    return Err(WireError::BadValue("advert entry count"));
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(r.entry()?);
                }
                WireMessage::ShardAdvert {
                    shard,
                    epoch,
                    entries,
                }
            }
            tag::SHARD_USAGE => WireMessage::ShardUsage {
                shard: r.u16()?,
                epoch: r.u64()?,
                bytes: r.u64()?,
                clock: r.u64()?,
                oldest_stamp: r.u64()?,
            },
            tag::SHARD_FRAME => {
                let shard = r.u16()?;
                let entry = r.entry()?;
                let width = r.u32()?;
                let height = r.u32()?;
                if width == 0 || height == 0 {
                    return Err(WireError::BadValue("frame dims"));
                }
                let quality = r.u8()?;
                if quality > 2 {
                    return Err(WireError::BadValue("quality code"));
                }
                let scale_pm = r.u16()?;
                if scale_pm == 0 || scale_pm > 1000 {
                    return Err(WireError::BadValue("scale per-mille"));
                }
                let payload = r.rest().to_vec();
                if payload.is_empty() {
                    return Err(WireError::BadValue("frame payload"));
                }
                return Ok(WireMessage::ShardFrame {
                    shard,
                    entry,
                    width,
                    height,
                    quality,
                    scale_pm,
                    payload,
                });
            }
            other => return Err(WireError::UnknownType(other)),
        };
        if r.pos != r.buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(msg)
    }
}

/// Bounds-checked little-endian field reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An f64 that must be finite on the wire (poses and budgets are
    /// physical quantities; NaN/inf only ever arrive from corruption).
    fn finite_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        let v = f64::from_bits(self.u64()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::BadValue(what))
        }
    }

    fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// One [`ShardEntry`]. Positions must be finite (physical
    /// quantities) and the admission value finite and non-negative
    /// (it is a product of a reuse probability and a render cost).
    fn entry(&mut self) -> Result<ShardEntry, WireError> {
        let game = game_from_wire(self.u8()?)?;
        let grid_ix = self.i32()?;
        let grid_iz = self.i32()?;
        let pos_x = self.finite_f64("entry pos_x")?;
        let pos_z = self.finite_f64("entry pos_z")?;
        let leaf = self.u32()?;
        let near_hash = self.u64()?;
        let bytes = self.u64()?;
        let stamp = self.u64()?;
        let value = self.finite_f64("entry value")?;
        if value < 0.0 {
            return Err(WireError::BadValue("entry value"));
        }
        Ok(ShardEntry {
            game,
            grid_ix,
            grid_iz,
            pos_x,
            pos_z,
            leaf,
            near_hash,
            bytes,
            stamp,
            value,
        })
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

// --- incremental framing --------------------------------------------------

/// Incremental receive-side framer.
///
/// Feed raw socket bytes with [`FrameAssembler::push`], then drain
/// complete messages with [`FrameAssembler::next_message`]. The
/// assembler compacts its buffer as frames complete, so steady-state
/// memory is one partial frame plus the last read.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, data: &[u8]) {
        // Compact before growing so the buffer never retains an
        // unbounded consumed prefix.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete message.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] means the stream is corrupt; the connection
    /// should be closed (the assembler makes no attempt to resync).
    pub fn next_message(&mut self) -> Result<Option<WireMessage>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(avail[..HEADER_BYTES].try_into().unwrap()) as usize;
        if body_len > MAX_BODY_BYTES {
            return Err(WireError::Oversize(body_len));
        }
        if avail.len() < HEADER_BYTES + body_len {
            return Ok(None);
        }
        let body = &avail[HEADER_BYTES..HEADER_BYTES + body_len];
        let msg = WireMessage::decode_body(body)?;
        self.start += HEADER_BYTES + body_len;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::Hello {
                proto: PROTO_VERSION,
                game: GameId::VikingVillage,
                room: 3,
                seed: 0xDEAD_BEEF,
            },
            WireMessage::Welcome {
                room: 3,
                player: 1,
                budget_ms: 16.7,
                token: None,
            },
            WireMessage::Welcome {
                room: 3,
                player: 1,
                budget_ms: 16.7,
                token: Some(sample_token()),
            },
            WireMessage::Resume {
                proto: PROTO_VERSION,
                token: sample_token(),
            },
            WireMessage::ResumeReject {
                reason: ResumeRejectReason::Expired,
            },
            WireMessage::Pose {
                seq: 42,
                t_ms: 700.25,
                x: -3.5,
                z: 12.0,
                yaw: 1.25,
            },
            WireMessage::Frame {
                seq: 42,
                width: 128,
                height: 64,
                quality: 1,
                store_hit: true,
                scale_pm: 750,
                payload: vec![1, 2, 3, 4, 5],
            },
            WireMessage::Degrade { scale_pm: 562 },
            WireMessage::Bye,
            WireMessage::Goodbye {
                reason: ByeReason::Shutdown,
            },
            WireMessage::Error {
                code: ErrorCode::BadState,
            },
            WireMessage::VersionReject {
                min: MIN_PROTO_VERSION,
                max: PROTO_VERSION,
            },
            WireMessage::ShardHello {
                proto: PROTO_VERSION,
                shard: 1,
                shards: 4,
                epoch: 17,
            },
            WireMessage::ShardAdvert {
                shard: 1,
                epoch: 17,
                entries: vec![
                    sample_entry(),
                    ShardEntry {
                        leaf: 9,
                        ..sample_entry()
                    },
                ],
            },
            WireMessage::ShardUsage {
                shard: 2,
                epoch: 17,
                bytes: 123_456,
                clock: 9_001,
                oldest_stamp: u64::MAX,
            },
            WireMessage::ShardFrame {
                shard: 3,
                entry: sample_entry(),
                width: 96,
                height: 48,
                quality: 2,
                scale_pm: 1000,
                payload: vec![9, 8, 7],
            },
        ]
    }

    fn sample_token() -> [u8; TOKEN_BYTES] {
        let mut t = [0u8; TOKEN_BYTES];
        for (i, b) in t.iter_mut().enumerate() {
            *b = i as u8 ^ 0xA5;
        }
        t
    }

    fn sample_entry() -> ShardEntry {
        ShardEntry {
            game: GameId::Fps,
            grid_ix: -4,
            grid_iz: 11,
            pos_x: -1.25,
            pos_z: 3.5,
            leaf: 7,
            near_hash: 0xFEED_F00D,
            bytes: 48_000,
            stamp: 321,
            value: 4.5,
        }
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = msg.encode_frame();
            let body = &frame[HEADER_BYTES..];
            assert_eq!(WireMessage::decode_body(body).unwrap(), msg);
        }
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.push(&[b]);
            while let Some(m) = asm.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn oversize_length_prefix_is_rejected() {
        let mut asm = FrameAssembler::new();
        asm.push(&(MAX_BODY_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(
            asm.next_message(),
            Err(WireError::Oversize(MAX_BODY_BYTES + 1))
        );
    }

    #[test]
    fn empty_body_is_rejected() {
        let mut asm = FrameAssembler::new();
        asm.push(&0u32.to_le_bytes());
        assert_eq!(asm.next_message(), Err(WireError::EmptyBody));
    }

    #[test]
    fn truncated_pose_is_rejected() {
        let pose = WireMessage::Pose {
            seq: 1,
            t_ms: 0.0,
            x: 0.0,
            z: 0.0,
            yaw: 0.0,
        };
        let frame = pose.encode_frame();
        // Chop the last payload byte and fix the length prefix.
        let body = &frame[HEADER_BYTES..frame.len() - 1];
        assert_eq!(WireMessage::decode_body(body), Err(WireError::Truncated));
    }

    #[test]
    fn non_finite_pose_is_rejected() {
        let mut body = vec![0x03u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        body.extend_from_slice(&0f64.to_bits().to_le_bytes());
        assert_eq!(
            WireMessage::decode_body(&body),
            Err(WireError::BadValue("t_ms"))
        );
    }

    #[test]
    fn tokenless_welcome_matches_v2_byte_layout() {
        // A v3 server answering a v1/v2 client must put exactly the
        // pre-v3 bytes on the wire: tag, room, player, budget — no tail.
        let msg = WireMessage::Welcome {
            room: 7,
            player: 2,
            budget_ms: 16.7,
            token: None,
        };
        let mut body = Vec::new();
        msg.encode_body(&mut body);
        let mut expected = vec![tag::WELCOME];
        expected.extend_from_slice(&7u32.to_le_bytes());
        expected.extend_from_slice(&2u32.to_le_bytes());
        expected.extend_from_slice(&16.7f64.to_bits().to_le_bytes());
        assert_eq!(body, expected);
        assert_eq!(WireMessage::decode_body(&body).unwrap(), msg);
    }

    #[test]
    fn welcome_with_bad_token_length_is_rejected() {
        let msg = WireMessage::Welcome {
            room: 1,
            player: 0,
            budget_ms: 16.7,
            token: Some(sample_token()),
        };
        let mut body = Vec::new();
        msg.encode_body(&mut body);
        // Chopped token: shorter than TOKEN_BYTES but non-empty.
        let short = &body[..body.len() - 1];
        assert_eq!(WireMessage::decode_body(short), Err(WireError::Truncated));
        // Token with junk appended.
        let mut long = body.clone();
        long.push(0xFF);
        assert_eq!(
            WireMessage::decode_body(&long),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn truncated_resume_token_is_rejected() {
        let msg = WireMessage::Resume {
            proto: PROTO_VERSION,
            token: sample_token(),
        };
        let frame = msg.encode_frame();
        let body = &frame[HEADER_BYTES..frame.len() - 1];
        assert_eq!(WireMessage::decode_body(body), Err(WireError::Truncated));
    }

    #[test]
    fn resume_reject_reasons_are_total() {
        for reason in [
            ResumeRejectReason::Expired,
            ResumeRejectReason::Unknown,
            ResumeRejectReason::Malformed,
        ] {
            let msg = WireMessage::ResumeReject { reason };
            let frame = msg.encode_frame();
            assert_eq!(
                WireMessage::decode_body(&frame[HEADER_BYTES..]).unwrap(),
                msg
            );
        }
        let body = [tag::RESUME_REJECT, 9];
        assert_eq!(
            WireMessage::decode_body(&body),
            Err(WireError::BadValue("resume reject reason"))
        );
    }

    #[test]
    fn game_codes_are_stable_and_total() {
        for game in GameId::ALL {
            assert_eq!(game_from_wire(game_to_wire(game)).unwrap(), game);
        }
        assert_eq!(game_from_wire(200), Err(WireError::BadGame(200)));
    }
}
