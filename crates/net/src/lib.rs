//! # coterie-net
//!
//! Shared-medium wireless network model (802.11ac downlink).
//!
//! The paper's testbed serves up to four Pixel 2 phones from one desktop
//! over 802.11ac with ≈500 Mbps measured TCP goodput (§3). The scaling
//! bottleneck it demonstrates — Multi-Furion's per-frame network delay
//! roughly doubling with two players (Table 1) — is a property of the
//! *shared* downlink: the access point serializes transmissions, so every
//! concurrent transfer queues behind the others, and MAC contention
//! shaves additional efficiency as stations are added.
//!
//! [`SharedLink`] models exactly that: a FIFO transmission queue with a
//! station-count-dependent effective rate and a base latency per
//! transfer. It is deliberately *not* a packet-level simulator; the
//! paper's effects live at transfer granularity.
//!
//! # Example
//!
//! ```
//! use coterie_net::SharedLink;
//!
//! let mut link = SharedLink::wifi_80211ac(1);
//! let t1 = link.transfer(0.0, 550_000); // one 550 KB BE frame
//! let t2 = link.transfer(0.0, 550_000); // a second player's frame queues
//! assert!(t2.completed_at_ms > t1.completed_at_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fault;
pub mod token;
pub mod wire;

pub use channel::{DatagramChannel, Delivery, PacketLost};
pub use fault::{FiChannel, NetScenario};
pub use token::ResumeToken;
pub use wire::{FrameAssembler, ShardEntry, WireError, WireMessage};

use serde::{Deserialize, Serialize};

/// Measured 802.11ac TCP goodput from the paper's testbed, Mbps (§3).
pub const WIFI_80211AC_GOODPUT_MBPS: f64 = 500.0;

/// Result of scheduling one transfer on the shared link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// When transmission actually started (after queueing), ms.
    pub started_at_ms: f64,
    /// When the last byte arrived at the client, ms.
    pub completed_at_ms: f64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl Transfer {
    /// Total latency experienced by the requester, ms.
    pub fn latency_ms(&self, requested_at_ms: f64) -> f64 {
        self.completed_at_ms - requested_at_ms
    }
}

/// A shared wireless downlink with FIFO service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedLink {
    /// Nominal single-station TCP goodput, Mbps.
    capacity_mbps: f64,
    /// Fixed per-transfer latency (TCP/WiFi round trip, request
    /// processing), ms.
    base_latency_ms: f64,
    /// Number of stations sharing the medium.
    stations: usize,
    /// Next instant the medium is free, ms.
    busy_until_ms: f64,
    /// Total bytes ever sent (for bandwidth accounting).
    total_bytes: u64,
}

impl SharedLink {
    /// An 802.11ac link as measured in the paper (500 Mbps goodput,
    /// ~2.5 ms base latency), shared by `stations` phones.
    pub fn wifi_80211ac(stations: usize) -> Self {
        Self::new(WIFI_80211AC_GOODPUT_MBPS, 2.5, stations)
    }

    /// Creates a link with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mbps` is not positive or `stations` is zero.
    pub fn new(capacity_mbps: f64, base_latency_ms: f64, stations: usize) -> Self {
        assert!(capacity_mbps > 0.0, "link capacity must be positive");
        assert!(stations > 0, "need at least one station");
        SharedLink {
            capacity_mbps,
            base_latency_ms,
            stations,
            busy_until_ms: 0.0,
            total_bytes: 0,
        }
    }

    /// MAC efficiency as a function of station count: contention overhead
    /// (backoff, collisions, per-station ACKs) grows mildly with each
    /// added station. One station keeps the full measured goodput.
    pub fn mac_efficiency(&self) -> f64 {
        1.0 / (1.0 + 0.06 * (self.stations.saturating_sub(1)) as f64)
    }

    /// Effective aggregate goodput with current contention, Mbps.
    pub fn effective_mbps(&self) -> f64 {
        self.capacity_mbps * self.mac_efficiency()
    }

    /// Number of stations sharing the link.
    pub fn stations(&self) -> usize {
        self.stations
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Schedules a transfer of `bytes` requested at `now_ms`. The medium
    /// serves transfers FIFO: transmission starts when the medium frees
    /// up, and the requester sees base latency on top.
    pub fn transfer(&mut self, now_ms: f64, bytes: u64) -> Transfer {
        let start = self.busy_until_ms.max(now_ms);
        // Mbps = 1000 bits per ms.
        let duration_ms = bytes as f64 * 8.0 / (self.effective_mbps() * 1000.0);
        self.busy_until_ms = start + duration_ms;
        self.total_bytes += bytes;
        Transfer {
            started_at_ms: start,
            completed_at_ms: self.busy_until_ms + self.base_latency_ms,
            bytes,
        }
    }

    /// [`SharedLink::transfer`] plus a telemetry span covering the
    /// whole wait (queueing, transmission, base latency) on the
    /// caller's lane, in simulated time. The link itself cannot own a
    /// sink — it is part of the serialized, comparable session state —
    /// so the sink rides in per call. A disabled sink adds one branch.
    pub fn transfer_traced(
        &mut self,
        now_ms: f64,
        bytes: u64,
        sink: &coterie_telemetry::TelemetrySink,
        track: coterie_telemetry::TrackId,
        frame_no: u64,
    ) -> Transfer {
        let t = self.transfer(now_ms, bytes);
        sink.span(
            track,
            coterie_telemetry::Stage::Net,
            "transfer",
            now_ms,
            t.latency_ms(now_ms),
            frame_no,
        );
        t
    }

    /// When the medium next becomes free, ms.
    pub fn busy_until_ms(&self) -> f64 {
        self.busy_until_ms
    }

    /// Resets queue state (bandwidth accounting is kept).
    pub fn reset_queue(&mut self) {
        self.busy_until_ms = 0.0;
    }
}

/// Accumulates byte counts over simulated time to report throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes: u64,
    window_start_ms: f64,
    window_end_ms: f64,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` observed at `now_ms`.
    pub fn record(&mut self, now_ms: f64, bytes: u64) {
        if self.bytes == 0 && self.window_end_ms == 0.0 {
            self.window_start_ms = now_ms;
        }
        self.bytes += bytes;
        self.window_end_ms = self.window_end_ms.max(now_ms);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average throughput in Mbps over an explicit duration.
    pub fn mbps_over(&self, duration_ms: f64) -> f64 {
        if duration_ms <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / 1000.0 / duration_ms
    }

    /// Average throughput in Kbps over an explicit duration.
    pub fn kbps_over(&self, duration_ms: f64) -> f64 {
        self.mbps_over(duration_ms) * 1000.0
    }
}

/// Fleet-wide egress budget for admission control.
///
/// A serve fleet provisions a fixed downlink egress (the access points
/// and uplinks behind all of its rooms' [`SharedLink`]s). Rooms ask the
/// budget for bytes before prefetching; when a simulated-time window's
/// spend would exceed the provisioned rate, admission is refused and
/// the room degrades (lower quality scale) instead of oversubscribing
/// the medium. Accounting uses tumbling windows of simulated time, so
/// identical request sequences always produce identical decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEgress {
    budget_mbps: f64,
    window_ms: f64,
    window_start_ms: f64,
    window_bytes: u64,
    total_bytes: u64,
    refused: u64,
}

impl FleetEgress {
    /// A budget of `budget_mbps` accounted over 100 ms tumbling windows
    /// (fine enough that a one-second burst cannot hide inside a
    /// window, coarse enough to ride out single-frame spikes).
    ///
    /// # Panics
    ///
    /// Panics if `budget_mbps` is not positive.
    pub fn new(budget_mbps: f64) -> Self {
        Self::with_window(budget_mbps, 100.0)
    }

    /// A budget with an explicit accounting window.
    ///
    /// # Panics
    ///
    /// Panics if `budget_mbps` or `window_ms` is not positive.
    pub fn with_window(budget_mbps: f64, window_ms: f64) -> Self {
        assert!(budget_mbps > 0.0, "egress budget must be positive");
        assert!(window_ms > 0.0, "accounting window must be positive");
        FleetEgress {
            budget_mbps,
            window_ms,
            window_start_ms: 0.0,
            window_bytes: 0,
            total_bytes: 0,
            refused: 0,
        }
    }

    /// Provisioned egress rate, Mbps.
    pub fn budget_mbps(&self) -> f64 {
        self.budget_mbps
    }

    /// Bytes the current window may still admit.
    fn window_budget_bytes(&self) -> u64 {
        // Mbps = 125 bytes per ms.
        (self.budget_mbps * 125.0 * self.window_ms) as u64
    }

    fn roll_window(&mut self, now_ms: f64) {
        if now_ms >= self.window_start_ms + self.window_ms {
            // Tumbling windows: snap the start onto the window lattice
            // so the roll instant does not depend on request arrival
            // phase.
            let windows = ((now_ms - self.window_start_ms) / self.window_ms).floor();
            self.window_start_ms += windows * self.window_ms;
            self.window_bytes = 0;
        }
    }

    /// Requests admission for a transfer of `bytes` at `now_ms`.
    ///
    /// Returns `true` (and charges the window) if the spend fits in the
    /// provisioned rate, `false` (nothing charged) if it would exceed
    /// it. A single transfer larger than a whole window's budget is
    /// admitted when the window is empty — otherwise it could never be
    /// served at all.
    pub fn admit(&mut self, now_ms: f64, bytes: u64) -> bool {
        self.roll_window(now_ms);
        let fits =
            self.window_bytes + bytes <= self.window_budget_bytes() || self.window_bytes == 0;
        if fits {
            self.window_bytes += bytes;
            self.total_bytes += bytes;
        } else {
            self.refused += 1;
        }
        fits
    }

    /// Fraction of the current window's budget already spent (may
    /// exceed 1.0 after an oversized first-in-window admission).
    pub fn utilization(&mut self, now_ms: f64) -> f64 {
        self.roll_window(now_ms);
        self.window_bytes as f64 / self.window_budget_bytes().max(1) as f64
    }

    /// Total bytes admitted over the budget's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of refused admission requests.
    pub fn refused(&self) -> u64 {
        self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time_matches_rate() {
        let mut link = SharedLink::new(500.0, 0.0, 1);
        // 500 Mbps = 62.5 KB per ms; 625 KB should take 10 ms.
        let t = link.transfer(0.0, 625_000);
        assert!(
            (t.completed_at_ms - 10.0).abs() < 1e-9,
            "{}",
            t.completed_at_ms
        );
    }

    #[test]
    fn base_latency_added_once_per_transfer() {
        let mut link = SharedLink::new(500.0, 2.5, 1);
        let t = link.transfer(0.0, 625_000);
        assert!((t.completed_at_ms - 12.5).abs() < 1e-9);
        assert!((t.latency_ms(0.0) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        // The paper's Table 1 mechanism: with 2 players, each BE frame
        // waits for the other's, roughly doubling network delay.
        let mut link = SharedLink::new(500.0, 2.5, 2);
        let t1 = link.transfer(0.0, 550_000);
        let t2 = link.transfer(0.0, 550_000);
        assert!(t2.started_at_ms >= t1.completed_at_ms - 2.5 - 1e-9);
        let l1 = t1.latency_ms(0.0);
        let l2 = t2.latency_ms(0.0);
        assert!(
            l2 > l1 * 1.7,
            "second transfer should see ~2x latency: {l1:.1} vs {l2:.1}"
        );
    }

    #[test]
    fn mac_efficiency_decreases_with_stations() {
        let one = SharedLink::wifi_80211ac(1);
        let four = SharedLink::wifi_80211ac(4);
        assert_eq!(one.mac_efficiency(), 1.0);
        assert!(four.mac_efficiency() < 1.0);
        assert!(four.mac_efficiency() > 0.7, "contention model too harsh");
        assert!(four.effective_mbps() < one.effective_mbps());
    }

    #[test]
    fn medium_frees_up_over_time() {
        let mut link = SharedLink::new(100.0, 0.0, 1);
        let t1 = link.transfer(0.0, 125_000); // 10 ms at 100 Mbps
        assert!((t1.completed_at_ms - 10.0).abs() < 1e-9);
        // A request arriving after the medium is free starts immediately.
        let t2 = link.transfer(50.0, 125_000);
        assert_eq!(t2.started_at_ms, 50.0);
    }

    #[test]
    fn total_bytes_accumulates() {
        let mut link = SharedLink::wifi_80211ac(1);
        link.transfer(0.0, 1000);
        link.transfer(1.0, 2000);
        assert_eq!(link.total_bytes(), 3000);
    }

    #[test]
    fn table1_net_delay_regime() {
        // Multi-Furion 1P: ~550 KB frames, ~9 ms net delay (Table 1).
        let mut link = SharedLink::wifi_80211ac(1);
        let t = link.transfer(0.0, 550_000);
        let delay = t.latency_ms(0.0);
        assert!(
            (7.0..12.0).contains(&delay),
            "1-player 550KB transfer should take ~9 ms, got {delay:.1}"
        );
        // 2 players: ~18-20 ms for the queued one.
        let mut link2 = SharedLink::wifi_80211ac(2);
        let _a = link2.transfer(0.0, 550_000);
        let b = link2.transfer(0.0, 550_000);
        let d2 = b.latency_ms(0.0);
        assert!(
            (15.0..24.0).contains(&d2),
            "2-player queued transfer should take ~18-20 ms, got {d2:.1}"
        );
    }

    #[test]
    fn throughput_meter_computes_mbps() {
        let mut m = ThroughputMeter::new();
        m.record(0.0, 625_000); // 5 Mbit
        m.record(500.0, 625_000); // 5 Mbit
                                  // 10 Mbit over 1 s = 10 Mbps.
        assert!((m.mbps_over(1000.0) - 10.0).abs() < 1e-9);
        assert!((m.kbps_over(1000.0) - 10_000.0).abs() < 1e-6);
        assert_eq!(m.bytes(), 1_250_000);
        assert_eq!(m.mbps_over(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_rejected() {
        let _ = SharedLink::new(0.0, 1.0, 1);
    }

    #[test]
    fn reset_queue_clears_busy_state() {
        let mut link = SharedLink::wifi_80211ac(1);
        link.transfer(0.0, 10_000_000);
        assert!(link.busy_until_ms() > 0.0);
        link.reset_queue();
        assert_eq!(link.busy_until_ms(), 0.0);
        assert!(link.total_bytes() > 0, "accounting preserved");
    }

    #[test]
    fn egress_admits_within_budget() {
        // 100 Mbps over 100 ms windows = 1.25 MB per window.
        let mut egress = FleetEgress::new(100.0);
        assert!(egress.admit(0.0, 500_000));
        assert!(egress.admit(10.0, 500_000));
        assert!(egress.admit(20.0, 250_000));
        // Window full: the next request in the same window is refused.
        assert!(!egress.admit(30.0, 500_000));
        assert_eq!(egress.refused(), 1);
        assert_eq!(egress.total_bytes(), 1_250_000);
        assert!((egress.utilization(30.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn egress_window_rolls_with_time() {
        let mut egress = FleetEgress::new(100.0);
        assert!(egress.admit(0.0, 1_250_000));
        assert!(!egress.admit(50.0, 1));
        // Next window: budget is fresh again.
        assert!(egress.admit(100.0, 1_250_000));
        assert_eq!(egress.utilization(250.0), 0.0);
    }

    #[test]
    fn egress_oversized_transfer_admitted_when_window_empty() {
        let mut egress = FleetEgress::with_window(10.0, 10.0); // 12.5 KB/window
        assert!(
            egress.admit(0.0, 1_000_000),
            "must not deadlock on big frames"
        );
        assert!(egress.utilization(0.0) > 1.0);
        assert!(!egress.admit(1.0, 100));
    }

    #[test]
    fn egress_decisions_are_deterministic() {
        let run = || {
            let mut egress = FleetEgress::new(250.0);
            (0..400)
                .map(|i| egress.admit(i as f64 * 3.7, 90_000 + (i % 7) * 10_000))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "egress budget must be positive")]
    fn egress_zero_budget_rejected() {
        let _ = FleetEgress::new(0.0);
    }
}
