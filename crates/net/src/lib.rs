//! # coterie-net
//!
//! Shared-medium wireless network model (802.11ac downlink).
//!
//! The paper's testbed serves up to four Pixel 2 phones from one desktop
//! over 802.11ac with ≈500 Mbps measured TCP goodput (§3). The scaling
//! bottleneck it demonstrates — Multi-Furion's per-frame network delay
//! roughly doubling with two players (Table 1) — is a property of the
//! *shared* downlink: the access point serializes transmissions, so every
//! concurrent transfer queues behind the others, and MAC contention
//! shaves additional efficiency as stations are added.
//!
//! [`SharedLink`] models exactly that: a FIFO transmission queue with a
//! station-count-dependent effective rate and a base latency per
//! transfer. It is deliberately *not* a packet-level simulator; the
//! paper's effects live at transfer granularity.
//!
//! # Example
//!
//! ```
//! use coterie_net::SharedLink;
//!
//! let mut link = SharedLink::wifi_80211ac(1);
//! let t1 = link.transfer(0.0, 550_000); // one 550 KB BE frame
//! let t2 = link.transfer(0.0, 550_000); // a second player's frame queues
//! assert!(t2.completed_at_ms > t1.completed_at_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;

pub use channel::{DatagramChannel, Delivery};

use serde::{Deserialize, Serialize};

/// Measured 802.11ac TCP goodput from the paper's testbed, Mbps (§3).
pub const WIFI_80211AC_GOODPUT_MBPS: f64 = 500.0;

/// Result of scheduling one transfer on the shared link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// When transmission actually started (after queueing), ms.
    pub started_at_ms: f64,
    /// When the last byte arrived at the client, ms.
    pub completed_at_ms: f64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl Transfer {
    /// Total latency experienced by the requester, ms.
    pub fn latency_ms(&self, requested_at_ms: f64) -> f64 {
        self.completed_at_ms - requested_at_ms
    }
}

/// A shared wireless downlink with FIFO service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedLink {
    /// Nominal single-station TCP goodput, Mbps.
    capacity_mbps: f64,
    /// Fixed per-transfer latency (TCP/WiFi round trip, request
    /// processing), ms.
    base_latency_ms: f64,
    /// Number of stations sharing the medium.
    stations: usize,
    /// Next instant the medium is free, ms.
    busy_until_ms: f64,
    /// Total bytes ever sent (for bandwidth accounting).
    total_bytes: u64,
}

impl SharedLink {
    /// An 802.11ac link as measured in the paper (500 Mbps goodput,
    /// ~2.5 ms base latency), shared by `stations` phones.
    pub fn wifi_80211ac(stations: usize) -> Self {
        Self::new(WIFI_80211AC_GOODPUT_MBPS, 2.5, stations)
    }

    /// Creates a link with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mbps` is not positive or `stations` is zero.
    pub fn new(capacity_mbps: f64, base_latency_ms: f64, stations: usize) -> Self {
        assert!(capacity_mbps > 0.0, "link capacity must be positive");
        assert!(stations > 0, "need at least one station");
        SharedLink {
            capacity_mbps,
            base_latency_ms,
            stations,
            busy_until_ms: 0.0,
            total_bytes: 0,
        }
    }

    /// MAC efficiency as a function of station count: contention overhead
    /// (backoff, collisions, per-station ACKs) grows mildly with each
    /// added station. One station keeps the full measured goodput.
    pub fn mac_efficiency(&self) -> f64 {
        1.0 / (1.0 + 0.06 * (self.stations.saturating_sub(1)) as f64)
    }

    /// Effective aggregate goodput with current contention, Mbps.
    pub fn effective_mbps(&self) -> f64 {
        self.capacity_mbps * self.mac_efficiency()
    }

    /// Number of stations sharing the link.
    pub fn stations(&self) -> usize {
        self.stations
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Schedules a transfer of `bytes` requested at `now_ms`. The medium
    /// serves transfers FIFO: transmission starts when the medium frees
    /// up, and the requester sees base latency on top.
    pub fn transfer(&mut self, now_ms: f64, bytes: u64) -> Transfer {
        let start = self.busy_until_ms.max(now_ms);
        // Mbps = 1000 bits per ms.
        let duration_ms = bytes as f64 * 8.0 / (self.effective_mbps() * 1000.0);
        self.busy_until_ms = start + duration_ms;
        self.total_bytes += bytes;
        Transfer {
            started_at_ms: start,
            completed_at_ms: self.busy_until_ms + self.base_latency_ms,
            bytes,
        }
    }

    /// When the medium next becomes free, ms.
    pub fn busy_until_ms(&self) -> f64 {
        self.busy_until_ms
    }

    /// Resets queue state (bandwidth accounting is kept).
    pub fn reset_queue(&mut self) {
        self.busy_until_ms = 0.0;
    }
}

/// Accumulates byte counts over simulated time to report throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes: u64,
    window_start_ms: f64,
    window_end_ms: f64,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` observed at `now_ms`.
    pub fn record(&mut self, now_ms: f64, bytes: u64) {
        if self.bytes == 0 && self.window_end_ms == 0.0 {
            self.window_start_ms = now_ms;
        }
        self.bytes += bytes;
        self.window_end_ms = self.window_end_ms.max(now_ms);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average throughput in Mbps over an explicit duration.
    pub fn mbps_over(&self, duration_ms: f64) -> f64 {
        if duration_ms <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / 1000.0 / duration_ms
    }

    /// Average throughput in Kbps over an explicit duration.
    pub fn kbps_over(&self, duration_ms: f64) -> f64 {
        self.mbps_over(duration_ms) * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time_matches_rate() {
        let mut link = SharedLink::new(500.0, 0.0, 1);
        // 500 Mbps = 62.5 KB per ms; 625 KB should take 10 ms.
        let t = link.transfer(0.0, 625_000);
        assert!((t.completed_at_ms - 10.0).abs() < 1e-9, "{}", t.completed_at_ms);
    }

    #[test]
    fn base_latency_added_once_per_transfer() {
        let mut link = SharedLink::new(500.0, 2.5, 1);
        let t = link.transfer(0.0, 625_000);
        assert!((t.completed_at_ms - 12.5).abs() < 1e-9);
        assert!((t.latency_ms(0.0) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_transfers_queue_fifo() {
        // The paper's Table 1 mechanism: with 2 players, each BE frame
        // waits for the other's, roughly doubling network delay.
        let mut link = SharedLink::new(500.0, 2.5, 2);
        let t1 = link.transfer(0.0, 550_000);
        let t2 = link.transfer(0.0, 550_000);
        assert!(t2.started_at_ms >= t1.completed_at_ms - 2.5 - 1e-9);
        let l1 = t1.latency_ms(0.0);
        let l2 = t2.latency_ms(0.0);
        assert!(
            l2 > l1 * 1.7,
            "second transfer should see ~2x latency: {l1:.1} vs {l2:.1}"
        );
    }

    #[test]
    fn mac_efficiency_decreases_with_stations() {
        let one = SharedLink::wifi_80211ac(1);
        let four = SharedLink::wifi_80211ac(4);
        assert_eq!(one.mac_efficiency(), 1.0);
        assert!(four.mac_efficiency() < 1.0);
        assert!(four.mac_efficiency() > 0.7, "contention model too harsh");
        assert!(four.effective_mbps() < one.effective_mbps());
    }

    #[test]
    fn medium_frees_up_over_time() {
        let mut link = SharedLink::new(100.0, 0.0, 1);
        let t1 = link.transfer(0.0, 125_000); // 10 ms at 100 Mbps
        assert!((t1.completed_at_ms - 10.0).abs() < 1e-9);
        // A request arriving after the medium is free starts immediately.
        let t2 = link.transfer(50.0, 125_000);
        assert_eq!(t2.started_at_ms, 50.0);
    }

    #[test]
    fn total_bytes_accumulates() {
        let mut link = SharedLink::wifi_80211ac(1);
        link.transfer(0.0, 1000);
        link.transfer(1.0, 2000);
        assert_eq!(link.total_bytes(), 3000);
    }

    #[test]
    fn table1_net_delay_regime() {
        // Multi-Furion 1P: ~550 KB frames, ~9 ms net delay (Table 1).
        let mut link = SharedLink::wifi_80211ac(1);
        let t = link.transfer(0.0, 550_000);
        let delay = t.latency_ms(0.0);
        assert!(
            (7.0..12.0).contains(&delay),
            "1-player 550KB transfer should take ~9 ms, got {delay:.1}"
        );
        // 2 players: ~18-20 ms for the queued one.
        let mut link2 = SharedLink::wifi_80211ac(2);
        let _a = link2.transfer(0.0, 550_000);
        let b = link2.transfer(0.0, 550_000);
        let d2 = b.latency_ms(0.0);
        assert!(
            (15.0..24.0).contains(&d2),
            "2-player queued transfer should take ~18-20 ms, got {d2:.1}"
        );
    }

    #[test]
    fn throughput_meter_computes_mbps() {
        let mut m = ThroughputMeter::new();
        m.record(0.0, 625_000); // 5 Mbit
        m.record(500.0, 625_000); // 5 Mbit
        // 10 Mbit over 1 s = 10 Mbps.
        assert!((m.mbps_over(1000.0) - 10.0).abs() < 1e-9);
        assert!((m.kbps_over(1000.0) - 10_000.0).abs() < 1e-6);
        assert_eq!(m.bytes(), 1_250_000);
        assert_eq!(m.mbps_over(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_rejected() {
        let _ = SharedLink::new(0.0, 1.0, 1);
    }

    #[test]
    fn reset_queue_clears_busy_state() {
        let mut link = SharedLink::wifi_80211ac(1);
        link.transfer(0.0, 10_000_000);
        assert!(link.busy_until_ms() > 0.0);
        link.reset_queue();
        assert_eq!(link.busy_until_ms(), 0.0);
        assert!(link.total_bytes() > 0, "accounting preserved");
    }
}
