//! Best-effort datagram channel for FI synchronization.
//!
//! The paper exchanges foreground interactions over PUN, which rides UDP
//! (§5.1 task 4): small state packets at frame rate, where occasional
//! loss is preferable to head-of-line blocking. This model produces the
//! per-packet latencies and losses the FI path sees on a busy WLAN —
//! seeded, so sessions stay reproducible.

use self::noise_free_rng::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Outcome of sending one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delivery {
    /// Delivered after the given one-way latency, ms.
    Delivered {
        /// One-way latency, ms.
        latency_ms: f64,
    },
    /// Dropped by the network.
    Lost,
}

impl Delivery {
    /// The latency if delivered.
    pub fn latency_ms(&self) -> Option<f64> {
        match *self {
            Delivery::Delivered { latency_ms } => Some(latency_ms),
            Delivery::Lost => None,
        }
    }
}

/// Error returned when the network dropped a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketLost;

impl std::fmt::Display for PacketLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "datagram lost by the network")
    }
}

impl std::error::Error for PacketLost {}

/// A lossy, jittery datagram channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatagramChannel {
    /// Median one-way latency, ms.
    pub base_latency_ms: f64,
    /// Jitter half-range, ms (latency varies uniformly ±jitter).
    pub jitter_ms: f64,
    /// Independent per-packet loss probability.
    pub loss_rate: f64,
    rng: DeterministicRng,
    sent: u64,
    lost: u64,
}

impl DatagramChannel {
    /// A WLAN FI channel like the paper's testbed: ~1.2 ms one-way with
    /// sub-millisecond jitter and a fraction of a percent loss.
    pub fn wifi_fi(seed: u64) -> Self {
        Self::new(1.2, 0.6, 0.003, seed)
    }

    /// Creates a channel with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1]` or latencies are
    /// negative.
    pub fn new(base_latency_ms: f64, jitter_ms: f64, loss_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be a probability"
        );
        assert!(
            base_latency_ms >= 0.0 && jitter_ms >= 0.0,
            "latencies must be non-negative"
        );
        DatagramChannel {
            base_latency_ms,
            jitter_ms,
            loss_rate,
            rng: DeterministicRng::new(seed),
            sent: 0,
            lost: 0,
        }
    }

    /// Sends one datagram.
    pub fn send(&mut self) -> Delivery {
        self.sent += 1;
        if self.rng.next_f64() < self.loss_rate {
            self.lost += 1;
            return Delivery::Lost;
        }
        let jitter = (self.rng.next_f64() * 2.0 - 1.0) * self.jitter_ms;
        Delivery::Delivered {
            latency_ms: (self.base_latency_ms + jitter).max(0.0),
        }
    }

    /// Sends one datagram and returns its one-way latency.
    ///
    /// A channel constructed with `loss_rate == 0.0` never loses
    /// packets, so lossless callers can rely on `Ok`; a loss on such a
    /// channel would indicate broken channel state and trips a debug
    /// assertion rather than a runtime panic.
    ///
    /// # Errors
    ///
    /// Returns [`PacketLost`] when the network drops the datagram,
    /// which happens with probability `loss_rate` per packet.
    pub fn send_latency(&mut self) -> Result<f64, PacketLost> {
        match self.send() {
            Delivery::Delivered { latency_ms } => Ok(latency_ms),
            Delivery::Lost => {
                debug_assert!(self.loss_rate > 0.0, "zero-loss channel dropped a packet");
                Err(PacketLost)
            }
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }

    /// Round-trip sync latency of a state update relayed through the
    /// server: two hops plus relay processing. This is the quantity the
    /// paper footnotes at 2–3 ms.
    pub fn relay_sync_ms(&mut self) -> Option<f64> {
        const RELAY_PROCESS_MS: f64 = 0.3;
        let up = self.send().latency_ms()?;
        let down = self.send().latency_ms()?;
        Some(up + RELAY_PROCESS_MS + down)
    }
}

/// A tiny deterministic PRNG kept private to the crate so it has no
/// dependency on the world crate's RNG (also used by the fault layer).
pub(crate) mod noise_free_rng {
    use serde::{Deserialize, Serialize};

    /// xorshift* generator.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    pub struct DeterministicRng {
        state: u64,
    }

    impl DeterministicRng {
        /// Seeds the generator (zero is remapped).
        pub fn new(seed: u64) -> Self {
            DeterministicRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_within_jitter_band() {
        let mut ch = DatagramChannel::new(2.0, 0.5, 0.0, 7);
        for _ in 0..1000 {
            // A zero-loss channel must always deliver; `send_latency`
            // encodes that contract (debug_assert inside) so the test
            // needs no panic arm for the impossible case.
            let latency_ms = ch.send_latency().expect("lossless channel");
            assert!((1.5..=2.5).contains(&latency_ms), "{latency_ms}");
        }
    }

    #[test]
    fn lossy_mode_returns_error_not_panic() {
        // Certain loss: every send reports PacketLost as a value.
        let mut ch = DatagramChannel::new(1.0, 0.0, 1.0, 9);
        for _ in 0..50 {
            assert_eq!(ch.send_latency(), Err(PacketLost));
        }
        assert_eq!(ch.lost(), 50);
        assert_eq!(ch.loss_ratio(), 1.0);
        assert_eq!(PacketLost.to_string(), "datagram lost by the network");
    }

    #[test]
    fn lossy_mode_mixes_delivery_and_loss() {
        let mut ch = DatagramChannel::new(2.0, 0.5, 0.3, 21);
        let mut delivered = 0u32;
        let mut lost = 0u32;
        for _ in 0..2000 {
            match ch.send_latency() {
                Ok(latency_ms) => {
                    delivered += 1;
                    assert!((1.5..=2.5).contains(&latency_ms), "{latency_ms}");
                }
                Err(PacketLost) => lost += 1,
            }
        }
        assert!(
            delivered > 0 && lost > 0,
            "{delivered} delivered / {lost} lost"
        );
        assert_eq!(u64::from(lost), ch.lost());
        let observed = ch.loss_ratio();
        assert!((0.25..0.35).contains(&observed), "loss {observed}");
    }

    #[test]
    fn relay_sync_fails_under_loss() {
        // With both hops lossy, some relayed syncs must fail outright.
        let mut ch = DatagramChannel::new(1.2, 0.3, 0.5, 4);
        let failed = (0..500).filter(|_| ch.relay_sync_ms().is_none()).count();
        assert!(failed > 100, "only {failed}/500 syncs failed at 50% loss");
    }

    #[test]
    fn loss_rate_converges() {
        let mut ch = DatagramChannel::new(1.0, 0.0, 0.10, 3);
        for _ in 0..20_000 {
            let _ = ch.send();
        }
        let observed = ch.loss_ratio();
        assert!((0.08..0.12).contains(&observed), "loss {observed}");
        assert_eq!(ch.sent(), 20_000);
    }

    #[test]
    fn relay_sync_in_paper_band() {
        // Footnote 1: "It takes 2-3ms for each client to sync its FI".
        let mut ch = DatagramChannel::wifi_fi(11);
        let mut total = 0.0;
        let mut n = 0;
        for _ in 0..2000 {
            if let Some(ms) = ch.relay_sync_ms() {
                total += ms;
                n += 1;
            }
        }
        let mean = total / n as f64;
        assert!((2.0..3.2).contains(&mean), "mean sync {mean:.2} ms");
    }

    #[test]
    fn channel_is_deterministic() {
        let mut a = DatagramChannel::wifi_fi(5);
        let mut b = DatagramChannel::wifi_fi(5);
        for _ in 0..100 {
            assert_eq!(a.send(), b.send());
        }
    }

    #[test]
    fn zero_latency_floor() {
        let mut ch = DatagramChannel::new(0.1, 5.0, 0.0, 2);
        for _ in 0..500 {
            if let Some(l) = ch.send().latency_ms() {
                assert!(l >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rejected() {
        let _ = DatagramChannel::new(1.0, 0.0, 1.5, 1);
    }
}
