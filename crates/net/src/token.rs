//! Reconnect tokens: the opaque, signed session handle carried in a
//! v3 [`crate::wire::WireMessage::Welcome`] and echoed back in
//! [`crate::wire::WireMessage::Resume`].
//!
//! A token binds the session identity (`game`, `room`, `player`) and
//! the issue instant to a 64-bit MAC keyed by a server-held secret.
//! Clients treat the bytes as opaque; only the issuing server can mint
//! or verify them. The MAC is a splitmix64 chain over the secret and
//! the identity fields — not cryptographically strong, but the threat
//! model here is accidental cross-session replay and corruption, the
//! same bar the rest of the wire layer holds itself to (the serving
//! plane runs on trusted LAN/UDS transports).
//!
//! TTL is enforced by the *server* against its own clock when the
//! token comes back: `issued_ms` travels inside the signed region, so
//! a client cannot refresh its own token by rewriting the field.

use crate::wire::{game_from_wire, game_to_wire, TOKEN_BYTES};
use coterie_world::GameId;

/// splitmix64: a strong 64-bit mixer (fixed constants, no state).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// MAC over the token's identity fields, keyed by `secret`: a
/// splitmix64 chain absorbing one field per round so field order (and
/// every bit of every field) affects the tag.
fn mac(secret: u64, game: u8, room: u32, player: u32, issued_ms: u64) -> u64 {
    let mut h = splitmix64(secret ^ 0xC07E_21E0_7E57_7E57);
    h = splitmix64(h ^ game as u64);
    h = splitmix64(h ^ room as u64);
    h = splitmix64(h ^ ((player as u64) << 32));
    h = splitmix64(h ^ issued_ms);
    h
}

/// The verified contents of a reconnect token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeToken {
    /// Game of the parked session.
    pub game: GameId,
    /// Room of the parked session.
    pub room: u32,
    /// Player id within the room.
    pub player: u32,
    /// Server clock at issue time, ms (TTL anchor).
    pub issued_ms: u64,
}

impl ResumeToken {
    /// Mints the signed wire bytes for this token.
    pub fn sign(&self, secret: u64) -> [u8; TOKEN_BYTES] {
        let game = game_to_wire(self.game);
        let sig = mac(secret, game, self.room, self.player, self.issued_ms);
        let mut out = [0u8; TOKEN_BYTES];
        out[0] = game;
        out[1..5].copy_from_slice(&self.room.to_le_bytes());
        out[5..9].copy_from_slice(&self.player.to_le_bytes());
        out[9..17].copy_from_slice(&self.issued_ms.to_le_bytes());
        out[17..25].copy_from_slice(&sig.to_le_bytes());
        out
    }

    /// Verifies the MAC and decodes the token. Returns `None` for a
    /// forged/corrupt signature or an unknown game code.
    pub fn verify(bytes: &[u8; TOKEN_BYTES], secret: u64) -> Option<ResumeToken> {
        let game_code = bytes[0];
        let room = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
        let player = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
        let issued_ms = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
        let sig = u64::from_le_bytes(bytes[17..25].try_into().unwrap());
        if mac(secret, game_code, room, player, issued_ms) != sig {
            return None;
        }
        let game = game_from_wire(game_code).ok()?;
        Some(ResumeToken {
            game,
            room,
            player,
            issued_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: u64 = 0x1234_5678_9ABC_DEF0;

    fn sample() -> ResumeToken {
        ResumeToken {
            game: GameId::VikingVillage,
            room: 3,
            player: 1,
            issued_ms: 41_250,
        }
    }

    #[test]
    fn sign_verify_round_trips() {
        let t = sample();
        let bytes = t.sign(SECRET);
        assert_eq!(ResumeToken::verify(&bytes, SECRET), Some(t));
    }

    #[test]
    fn wrong_secret_fails_verification() {
        let bytes = sample().sign(SECRET);
        assert_eq!(ResumeToken::verify(&bytes, SECRET ^ 1), None);
    }

    #[test]
    fn any_flipped_bit_fails_verification() {
        let bytes = sample().sign(SECRET);
        for byte in 0..TOKEN_BYTES {
            for bit in 0..8 {
                let mut tampered = bytes;
                tampered[byte] ^= 1 << bit;
                assert_eq!(
                    ResumeToken::verify(&tampered, SECRET),
                    None,
                    "flip of byte {byte} bit {bit} must invalidate the MAC"
                );
            }
        }
    }

    #[test]
    fn issued_ms_is_inside_the_signed_region() {
        // Rewriting the TTL anchor without re-signing must fail: a
        // client cannot extend its own token's lifetime.
        let bytes = sample().sign(SECRET);
        let mut tampered = bytes;
        tampered[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(ResumeToken::verify(&tampered, SECRET), None);
    }
}
