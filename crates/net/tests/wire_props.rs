//! Property and corpus tests for the serving-plane wire protocol.
//!
//! Three layers of assurance, matching how the protocol fails in
//! practice:
//!
//! 1. **Round-trip properties** — arbitrary well-formed messages encode
//!    and decode to themselves, through both the one-shot body codec
//!    and the incremental [`FrameAssembler`] fed in random chunk sizes.
//! 2. **Mutation fuzzing** — random single-byte corruptions of valid
//!    frames either decode to *some* message or fail cleanly with a
//!    [`WireError`]; they never panic and never desynchronize the
//!    assembler's framing.
//! 3. **A hand-written malformed corpus** — the specific shapes a
//!    hostile or broken peer produces (oversize prefixes, truncations,
//!    trailing garbage, out-of-domain fields) map to the exact error
//!    variants the server logic matches on.

use coterie_net::wire::{
    game_from_wire, ByeReason, ErrorCode, ResumeRejectReason, ShardEntry, HEADER_BYTES,
    MAX_BODY_BYTES, MAX_SHARD_ENTRIES, PROTO_VERSION, TOKEN_BYTES,
};
use coterie_net::{FrameAssembler, ResumeToken, WireError, WireMessage};
use coterie_world::GameId;
use proptest::prelude::*;

fn any_game() -> impl Strategy<Value = GameId> {
    (0u8..GameId::ALL.len() as u8).prop_map(|c| game_from_wire(c).unwrap())
}

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1.0e6f64..1.0e6).prop_map(|v| v)
}

fn any_entry() -> impl Strategy<Value = ShardEntry> {
    (
        (
            any_game(),
            -10_000i32..10_000,
            -10_000i32..10_000,
            finite_f64(),
            finite_f64(),
        ),
        (
            0u32..1 << 20,
            0u64..u64::MAX,
            0u64..1 << 40,
            0u64..u64::MAX,
            0.0f64..1.0e6,
        ),
    )
        .prop_map(
            |((game, grid_ix, grid_iz, pos_x, pos_z), (leaf, near_hash, bytes, stamp, value))| {
                ShardEntry {
                    game,
                    grid_ix,
                    grid_iz,
                    pos_x,
                    pos_z,
                    leaf,
                    near_hash,
                    bytes,
                    stamp,
                    value,
                }
            },
        )
}

/// The v2 inter-shard family plus the structured version reject.
fn any_shard_message() -> impl Strategy<Value = WireMessage> {
    let reject = (0u16..100, 0u16..100).prop_map(|(a, b)| WireMessage::VersionReject {
        min: a.min(b),
        max: a.max(b),
    });
    let hello = (1u16..64, 0u16..64, 0u64..u64::MAX).prop_map(|(shards, s, epoch)| {
        WireMessage::ShardHello {
            proto: PROTO_VERSION,
            shard: s % shards,
            shards,
            epoch,
        }
    });
    let advert = (
        0u16..64,
        0u64..u64::MAX,
        proptest::collection::vec(any_entry(), 0..8),
    )
        .prop_map(|(shard, epoch, entries)| WireMessage::ShardAdvert {
            shard,
            epoch,
            entries,
        });
    let usage = (
        0u16..64,
        0u64..u64::MAX,
        0u64..1 << 40,
        0u64..u64::MAX,
        0u64..u64::MAX,
    )
        .prop_map(
            |(shard, epoch, bytes, clock, oldest_stamp)| WireMessage::ShardUsage {
                shard,
                epoch,
                bytes,
                clock,
                oldest_stamp,
            },
        );
    let frame = (
        (0u16..64, any_entry(), 1u32..4096, 1u32..4096),
        (
            0u8..3,
            1u16..=1000,
            proptest::collection::vec(0u8..=255, 1..256),
        ),
    )
        .prop_map(
            |((shard, entry, width, height), (quality, scale_pm, payload))| {
                WireMessage::ShardFrame {
                    shard,
                    entry,
                    width,
                    height,
                    quality,
                    scale_pm,
                    payload,
                }
            },
        );
    (0u8..5, reject, hello, advert, usage, frame).prop_map(|(pick, r, h, a, u, f)| match pick {
        0 => r,
        1 => h,
        2 => a,
        3 => u,
        _ => f,
    })
}

/// The v1 session family a game client speaks.
fn any_session_message() -> impl Strategy<Value = WireMessage> {
    let hello =
        (any_game(), 0u32..64, 0u64..u64::MAX).prop_map(|(game, room, seed)| WireMessage::Hello {
            proto: PROTO_VERSION,
            game,
            room,
            seed,
        });
    let welcome = (0u32..64, 0u32..256, finite_f64()).prop_map(|(room, player, budget_ms)| {
        WireMessage::Welcome {
            room,
            player,
            budget_ms,
            token: None,
        }
    });
    let pose = (
        0u64..u64::MAX,
        finite_f64(),
        finite_f64(),
        finite_f64(),
        finite_f64(),
    )
        .prop_map(|(seq, t_ms, x, z, yaw)| WireMessage::Pose {
            seq,
            t_ms,
            x,
            z,
            yaw,
        });
    let frame = (
        0u64..u64::MAX,
        1u32..4096,
        1u32..4096,
        0u8..3,
        proptest::bool::ANY,
        1u16..=1000,
        proptest::collection::vec(0u8..=255, 1..512),
    )
        .prop_map(
            |(seq, width, height, quality, store_hit, scale_pm, payload)| WireMessage::Frame {
                seq,
                width,
                height,
                quality,
                store_hit,
                scale_pm,
                payload,
            },
        );
    let degrade = (1u16..=1000).prop_map(|scale_pm| WireMessage::Degrade { scale_pm });
    let control = (0u8..5).prop_map(|k| match k {
        0 => WireMessage::Bye,
        1 => WireMessage::Goodbye {
            reason: ByeReason::Normal,
        },
        2 => WireMessage::Goodbye {
            reason: ByeReason::Shutdown,
        },
        3 => WireMessage::Error {
            code: ErrorCode::BadVersion,
        },
        _ => WireMessage::Error {
            code: ErrorCode::BadState,
        },
    });
    (0u8..6, hello, welcome, pose, frame, degrade, control).prop_map(|(pick, h, w, p, f, d, c)| {
        match pick {
            0 => h,
            1 => w,
            2 => p,
            3 => f,
            4 => d,
            _ => c,
        }
    })
}

fn any_token_bytes() -> impl Strategy<Value = [u8; TOKEN_BYTES]> {
    proptest::collection::vec(0u8..=255, TOKEN_BYTES)
        .prop_map(|v| <[u8; TOKEN_BYTES]>::try_from(v.as_slice()).unwrap())
}

/// The v3 resumption family: tokened Welcomes, Resume, ResumeReject.
fn any_resume_message() -> impl Strategy<Value = WireMessage> {
    let welcome = (0u32..64, 0u32..256, finite_f64(), any_token_bytes()).prop_map(
        |(room, player, budget_ms, token)| WireMessage::Welcome {
            room,
            player,
            budget_ms,
            token: Some(token),
        },
    );
    let resume = any_token_bytes().prop_map(|token| WireMessage::Resume {
        proto: PROTO_VERSION,
        token,
    });
    let reject = (0u8..3).prop_map(|k| WireMessage::ResumeReject {
        reason: match k {
            0 => ResumeRejectReason::Expired,
            1 => ResumeRejectReason::Unknown,
            _ => ResumeRejectReason::Malformed,
        },
    });
    (0u8..3, welcome, resume, reject).prop_map(|(pick, w, r, j)| match pick {
        0 => w,
        1 => r,
        _ => j,
    })
}

/// Any protocol message: one in four draws from the v2 shard family and
/// one in four from the v3 resumption family, so every property also
/// covers the 0x40+ and 0x11/0x12 tag ranges.
fn any_message() -> impl Strategy<Value = WireMessage> {
    (
        0u8..4,
        any_session_message(),
        any_shard_message(),
        any_resume_message(),
    )
        .prop_map(|(pick, session, shard, resume)| match pick {
            0 => shard,
            1 => resume,
            _ => session,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn message_round_trips_through_body_codec(msg in any_message()) {
        let frame = msg.encode_frame();
        let body = &frame[HEADER_BYTES..];
        let len = u32::from_le_bytes(frame[..HEADER_BYTES].try_into().unwrap()) as usize;
        prop_assert_eq!(len, body.len());
        prop_assert_eq!(WireMessage::decode_body(body).unwrap(), msg);
    }

    #[test]
    fn assembler_round_trips_random_chunking(
        msgs in proptest::collection::vec(any_message(), 1..12),
        chunk in 1usize..97,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode_frame());
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            asm.push(piece);
            while let Some(m) = asm.next_message().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(asm.pending_bytes(), 0);
    }

    /// Single-byte corruption of a valid stream must never panic, and
    /// as long as the *length prefixes* are intact the assembler must
    /// stay frame-synchronized: every frame either decodes or errors,
    /// and a sane receiver can account for all bytes.
    #[test]
    fn corrupted_bodies_fail_cleanly(
        msg in any_message(),
        flip_at in 0usize..64,
        xor in 1u8..=255,
    ) {
        let mut frame = msg.encode_frame();
        // Corrupt only body bytes, leaving the length prefix valid.
        let body_len = frame.len() - HEADER_BYTES;
        let idx = HEADER_BYTES + (flip_at % body_len);
        frame[idx] ^= xor;

        let mut asm = FrameAssembler::new();
        asm.push(&frame);
        match asm.next_message() {
            Ok(Some(_)) => {
                // Some corruptions land in don't-care bits (payloads,
                // seeds); the frame must have been fully consumed.
                prop_assert_eq!(asm.pending_bytes(), 0);
            }
            Ok(None) => prop_assert!(false, "complete frame reported incomplete"),
            Err(_) => {} // clean protocol error: connection would drop
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The v2/v3 additions live strictly outside the v1 tag space:
    /// every session message a v1 client can receive keeps its v1 type
    /// byte, every v2 addition sits at `VERSION_REJECT` (0x10) or in
    /// the reserved inter-shard range (0x40+), and the v3 resumption
    /// messages stay inside the reserved session-control range
    /// (0x10–0x3f) — except the tokened Welcome, which reuses the v1
    /// Welcome tag but is only ever sent to clients that negotiated
    /// v3. This is the wire-level guarantee that old clients decode a
    /// newer server's session traffic unchanged.
    #[test]
    fn new_tags_stay_out_of_the_v1_range(
        session in any_session_message(),
        shard in any_shard_message(),
        resume in any_resume_message(),
    ) {
        let session_tag = session.encode_frame()[HEADER_BYTES];
        prop_assert!(session_tag < 0x10, "session tag 0x{session_tag:02x}");
        let shard_tag = shard.encode_frame()[HEADER_BYTES];
        prop_assert!(
            shard_tag == 0x10 || shard_tag >= 0x40,
            "v2 tag 0x{shard_tag:02x} collides with the v1 range"
        );
        let resume_tag = resume.encode_frame()[HEADER_BYTES];
        let tokened_welcome = matches!(resume, WireMessage::Welcome { .. });
        prop_assert!(
            if tokened_welcome {
                resume_tag < 0x10
            } else {
                (0x11..0x40).contains(&resume_tag)
            },
            "v3 tag 0x{resume_tag:02x} outside the session-control range"
        );
    }

    /// Resume tokens round-trip through sign → wire → verify for any
    /// identity and secret, and never verify under a different secret.
    #[test]
    fn resume_tokens_round_trip_and_authenticate(
        game in any_game(),
        room in 0u32..1 << 20,
        player in 0u32..1 << 16,
        issued_ms in 0u64..1 << 48,
        secret in 0u64..u64::MAX,
        other_secret in 0u64..u64::MAX,
    ) {
        let token = ResumeToken { game, room, player, issued_ms };
        let bytes = token.sign(secret);
        prop_assert_eq!(ResumeToken::verify(&bytes, secret), Some(token));

        // Ride the signed bytes through the wire layer verbatim.
        let msg = WireMessage::Resume { proto: PROTO_VERSION, token: bytes };
        let frame = msg.encode_frame();
        let decoded = WireMessage::decode_body(&frame[HEADER_BYTES..]).unwrap();
        let WireMessage::Resume { token: echoed, .. } = decoded else {
            return Err(proptest::test_runner::TestCaseError::fail(
                "resume decoded to another variant".to_string(),
            ));
        };
        prop_assert_eq!(ResumeToken::verify(&echoed, secret), Some(token));

        if other_secret != secret {
            prop_assert_eq!(ResumeToken::verify(&bytes, other_secret), None);
        }
    }
}

// --- malformed corpus -----------------------------------------------------

/// Hand-written hostile inputs, each pinned to the exact error the
/// server's disconnect path matches on.
#[test]
fn malformed_corpus_maps_to_expected_errors() {
    let corpus: Vec<(&str, Vec<u8>, WireError)> = vec![
        (
            "oversize length prefix",
            (MAX_BODY_BYTES as u32 + 1).to_le_bytes().to_vec(),
            WireError::Oversize(MAX_BODY_BYTES + 1),
        ),
        (
            "u32::MAX length prefix",
            u32::MAX.to_le_bytes().to_vec(),
            WireError::Oversize(u32::MAX as usize),
        ),
        (
            "zero-length body",
            0u32.to_le_bytes().to_vec(),
            WireError::EmptyBody,
        ),
        (
            "unknown message type",
            frame_of(&[0x7f]),
            WireError::UnknownType(0x7f),
        ),
        (
            "hello with bad game id",
            {
                let mut b = vec![0x01u8];
                b.extend_from_slice(&PROTO_VERSION.to_le_bytes());
                b.push(250); // game code far past GameId::ALL
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(&0u64.to_le_bytes());
                frame_of(&b)
            },
            WireError::BadGame(250),
        ),
        (
            "truncated hello",
            frame_of(&[0x01, 0x01]), // type + half the proto field
            WireError::Truncated,
        ),
        (
            "pose with trailing garbage",
            {
                let pose = WireMessage::Pose {
                    seq: 9,
                    t_ms: 1.0,
                    x: 2.0,
                    z: 3.0,
                    yaw: 0.5,
                };
                let mut body = pose.encode_frame()[HEADER_BYTES..].to_vec();
                body.push(0xAA);
                frame_of(&body)
            },
            WireError::TrailingBytes,
        ),
        (
            "frame with zero scale",
            {
                let mut b = vec![0x04u8];
                b.extend_from_slice(&1u64.to_le_bytes()); // seq
                b.extend_from_slice(&16u32.to_le_bytes()); // width
                b.extend_from_slice(&16u32.to_le_bytes()); // height
                b.push(1); // quality
                b.push(0); // store_hit
                b.extend_from_slice(&0u16.to_le_bytes()); // scale_pm = 0
                frame_of(&b)
            },
            WireError::BadValue("scale per-mille"),
        ),
        (
            "frame with store_hit of 7",
            {
                let mut b = vec![0x04u8];
                b.extend_from_slice(&1u64.to_le_bytes());
                b.extend_from_slice(&16u32.to_le_bytes());
                b.extend_from_slice(&16u32.to_le_bytes());
                b.push(1);
                b.push(7);
                b.extend_from_slice(&500u16.to_le_bytes());
                frame_of(&b)
            },
            WireError::BadValue("store_hit flag"),
        ),
        (
            "welcome with infinite budget",
            {
                let mut b = vec![0x02u8];
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
                frame_of(&b)
            },
            WireError::BadValue("budget_ms"),
        ),
        (
            "goodbye with unknown reason",
            frame_of(&[0x07, 99]),
            WireError::BadValue("bye reason"),
        ),
        (
            "degrade over 1000 per-mille",
            {
                let mut b = vec![0x05u8];
                b.extend_from_slice(&1001u16.to_le_bytes());
                frame_of(&b)
            },
            WireError::BadValue("scale per-mille"),
        ),
        (
            "frame with zero-length payload",
            {
                // A complete Frame header and no payload bytes at all:
                // this must be a protocol error, not "need more bytes".
                let mut b = vec![0x04u8];
                b.extend_from_slice(&1u64.to_le_bytes()); // seq
                b.extend_from_slice(&16u32.to_le_bytes()); // width
                b.extend_from_slice(&16u32.to_le_bytes()); // height
                b.push(1); // quality
                b.push(0); // store_hit
                b.extend_from_slice(&500u16.to_le_bytes()); // scale_pm
                frame_of(&b)
            },
            WireError::BadValue("frame payload"),
        ),
        (
            "frame with zero width",
            {
                let mut b = vec![0x04u8];
                b.extend_from_slice(&1u64.to_le_bytes());
                b.extend_from_slice(&0u32.to_le_bytes()); // width = 0
                b.extend_from_slice(&16u32.to_le_bytes());
                b.push(1);
                b.push(0);
                b.extend_from_slice(&500u16.to_le_bytes());
                b.push(0xAB); // one payload byte
                frame_of(&b)
            },
            WireError::BadValue("frame dims"),
        ),
        (
            "version reject with inverted range",
            {
                let mut b = vec![0x10u8];
                b.extend_from_slice(&9u16.to_le_bytes()); // min
                b.extend_from_slice(&3u16.to_le_bytes()); // max < min
                frame_of(&b)
            },
            WireError::BadValue("version range"),
        ),
        (
            "shard hello with shard past the fleet width",
            {
                let mut b = vec![0x40u8];
                b.extend_from_slice(&PROTO_VERSION.to_le_bytes());
                b.extend_from_slice(&5u16.to_le_bytes()); // shard = 5
                b.extend_from_slice(&2u16.to_le_bytes()); // shards = 2
                b.extend_from_slice(&0u64.to_le_bytes()); // epoch
                frame_of(&b)
            },
            WireError::BadValue("shard index"),
        ),
        (
            "shard advert with oversize entry count",
            {
                let mut b = vec![0x41u8];
                b.extend_from_slice(&0u16.to_le_bytes()); // shard
                b.extend_from_slice(&1u64.to_le_bytes()); // epoch
                b.extend_from_slice(&(MAX_SHARD_ENTRIES as u32 + 1).to_le_bytes());
                frame_of(&b)
            },
            WireError::BadValue("advert entry count"),
        ),
        (
            "shard advert entry with NaN position",
            {
                let mut b = vec![0x41u8];
                b.extend_from_slice(&0u16.to_le_bytes()); // shard
                b.extend_from_slice(&1u64.to_le_bytes()); // epoch
                b.extend_from_slice(&1u32.to_le_bytes()); // one entry
                b.push(0); // game
                b.extend_from_slice(&0i32.to_le_bytes()); // grid_ix
                b.extend_from_slice(&0i32.to_le_bytes()); // grid_iz
                b.extend_from_slice(&f64::NAN.to_bits().to_le_bytes()); // pos_x
                frame_of(&b)
            },
            WireError::BadValue("entry pos_x"),
        ),
        (
            "shard frame with negative admission value",
            {
                let mut b = vec![0x43u8];
                b.extend_from_slice(&0u16.to_le_bytes()); // shard
                b.push(0); // entry.game
                b.extend_from_slice(&0i32.to_le_bytes()); // grid_ix
                b.extend_from_slice(&0i32.to_le_bytes()); // grid_iz
                b.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // pos_x
                b.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // pos_z
                b.extend_from_slice(&0u32.to_le_bytes()); // leaf
                b.extend_from_slice(&0u64.to_le_bytes()); // near_hash
                b.extend_from_slice(&64u64.to_le_bytes()); // bytes
                b.extend_from_slice(&1u64.to_le_bytes()); // stamp
                b.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes()); // value
                frame_of(&b)
            },
            WireError::BadValue("entry value"),
        ),
        (
            "resume with short token",
            {
                let mut b = vec![0x11u8];
                b.extend_from_slice(&PROTO_VERSION.to_le_bytes());
                b.extend_from_slice(&[0xAB; TOKEN_BYTES - 1]);
                frame_of(&b)
            },
            WireError::Truncated,
        ),
        (
            "resume with oversize token",
            {
                let mut b = vec![0x11u8];
                b.extend_from_slice(&PROTO_VERSION.to_le_bytes());
                b.extend_from_slice(&[0xAB; TOKEN_BYTES + 3]);
                frame_of(&b)
            },
            WireError::TrailingBytes,
        ),
        (
            "welcome with chopped token tail",
            {
                let mut b = vec![0x02u8];
                b.extend_from_slice(&0u32.to_le_bytes()); // room
                b.extend_from_slice(&0u32.to_le_bytes()); // player
                b.extend_from_slice(&16.7f64.to_bits().to_le_bytes());
                b.extend_from_slice(&[0xCD; TOKEN_BYTES / 2]);
                frame_of(&b)
            },
            WireError::Truncated,
        ),
        (
            "resume reject with unknown reason",
            frame_of(&[0x12, 42]),
            WireError::BadValue("resume reject reason"),
        ),
        (
            "shard frame with empty payload",
            {
                let entry = ShardEntry {
                    game: GameId::ALL[0],
                    grid_ix: 0,
                    grid_iz: 0,
                    pos_x: 0.0,
                    pos_z: 0.0,
                    leaf: 0,
                    near_hash: 0,
                    bytes: 64,
                    stamp: 1,
                    value: 0.0,
                };
                let full = WireMessage::ShardFrame {
                    shard: 0,
                    entry,
                    width: 16,
                    height: 16,
                    quality: 1,
                    scale_pm: 1000,
                    payload: vec![0xCD],
                };
                // Strip the single payload byte off a valid frame.
                let frame = full.encode_frame();
                frame_of(&frame[HEADER_BYTES..frame.len() - 1])
            },
            WireError::BadValue("frame payload"),
        ),
    ];

    for (name, bytes, want) in corpus {
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        match asm.next_message() {
            Err(got) => assert_eq!(got, want, "corpus case {name:?}"),
            other => panic!("corpus case {name:?}: expected Err({want:?}), got {other:?}"),
        }
    }
}

/// A length prefix arriving split across reads — including one byte at
/// a time, and with the body split at every offset after it — must
/// reassemble exactly, never error, and never yield early. This is the
/// shape a congested TCP stream actually produces (a 4-byte prefix has
/// no alignment guarantee against segment boundaries).
#[test]
fn split_length_prefix_reassembles() {
    let msg = WireMessage::Pose {
        seq: 5,
        t_ms: 33.4,
        x: 1.0,
        z: -2.0,
        yaw: 0.25,
    };
    let frame = msg.encode_frame();
    // Split the stream at every byte boundary inside the prefix and
    // body: feed [..cut] then [cut..].
    for cut in 1..frame.len() {
        let mut asm = FrameAssembler::new();
        asm.push(&frame[..cut]);
        assert_eq!(
            asm.next_message(),
            Ok(None),
            "prefix/body split at {cut} must wait for the rest"
        );
        asm.push(&frame[cut..]);
        assert_eq!(asm.next_message(), Ok(Some(msg.clone())), "split at {cut}");
        assert_eq!(asm.pending_bytes(), 0);
    }
    // Degenerate pacing: one byte per push.
    let mut asm = FrameAssembler::new();
    let mut got = None;
    for &b in &frame {
        asm.push(&[b]);
        if let Some(m) = asm.next_message().unwrap() {
            got = Some(m);
        }
    }
    assert_eq!(got, Some(msg));
}

/// Truncating a valid frame at every possible byte boundary must leave
/// the assembler waiting for more input, never erroring or yielding.
#[test]
fn every_truncation_point_waits_for_more() {
    let msg = WireMessage::Frame {
        seq: 77,
        width: 128,
        height: 64,
        quality: 1,
        store_hit: false,
        scale_pm: 1000,
        payload: vec![9; 40],
    };
    let frame = msg.encode_frame();
    for cut in 0..frame.len() {
        let mut asm = FrameAssembler::new();
        asm.push(&frame[..cut]);
        assert_eq!(
            asm.next_message(),
            Ok(None),
            "truncation at byte {cut} should wait, not fail"
        );
    }
}

fn frame_of(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(body);
    out
}
