//! Explore the frame cache: lookup versions, eviction policies, capacity.
//!
//! Replays a two-player Viking Village session against caches in every
//! configuration of the paper's Table 4, then contrasts LRU and FLF
//! ("furthest location first") replacement under a tight memory budget
//! (§5.3 "Cache replacement policy").
//!
//! Run with:
//! ```text
//! cargo run --release --example cache_explorer
//! ```

use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_core::{
    CacheConfig, CacheQuery, CacheVersion, EvictionPolicy, FrameCache, FrameMeta, FrameSource,
};
use coterie_device::DeviceProfile;
use coterie_world::{GameId, GameSpec, GridPoint, TraceSet};

/// Replays player 0's trace against one cache; returns (hit ratio,
/// evictions). Frames are ~250 KB like the paper's far-BE frames.
fn replay(
    cache: &mut FrameCache<()>,
    scene: &coterie_world::Scene,
    map: &CutoffMap,
    traces: &TraceSet,
) -> (f64, u64) {
    const FRAME_BYTES: u64 = 250 * 1000;
    let mut prev: Option<GridPoint> = None;
    for point in traces.player(0).expect("player 0").points() {
        let pos = point.position;
        let gp = scene.grid().snap(pos);
        if prev == Some(gp) {
            continue;
        }
        prev = Some(gp);
        let (leaf, radius, dist_thresh) = map.lookup_params(pos);
        let near_hash = scene.near_set_hash(pos, radius);
        let query = CacheQuery {
            grid: gp,
            pos,
            leaf,
            near_hash,
            dist_thresh,
        };
        if cache.lookup(&query).is_none() {
            cache.insert(
                FrameMeta {
                    grid: gp,
                    pos,
                    leaf,
                    near_hash,
                },
                FrameSource::SelfPrefetch,
                (),
                FRAME_BYTES,
                pos,
            );
        }
    }
    (cache.stats().hit_ratio(), cache.stats().evictions)
}

fn main() {
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(9);
    let map = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        9,
    );
    let traces = TraceSet::generate(&scene, &spec, 2, 120.0, 1.0 / 60.0, 9);

    println!("== lookup versions (infinite cache, Table 4) ==");
    for version in CacheVersion::ALL {
        let mut cache: FrameCache<()> = FrameCache::new(CacheConfig::infinite(version));
        let (hit, _) = replay(&mut cache, &scene, &map, &traces);
        println!("  {:<10} hit ratio {:>6.1}%", version.label(), hit * 100.0);
    }

    println!("\n== eviction policies under a tight 8 MB budget ==");
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Flf] {
        let mut cache: FrameCache<()> = FrameCache::new(CacheConfig {
            capacity_bytes: 8 * 1024 * 1024,
            policy,
            version: CacheVersion::V3,
        });
        let (hit, evictions) = replay(&mut cache, &scene, &map, &traces);
        println!(
            "  {policy:?}: hit ratio {:>6.1}%, {evictions} evictions, {} resident frames",
            hit * 100.0,
            cache.len()
        );
    }
    println!(
        "\nBoth policies stay effective because \"spatial locality and temporal locality \
         coincide well in each player's movement\" (§7)."
    );
}
