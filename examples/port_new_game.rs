//! Porting a brand-new VR game onto the Coterie framework.
//!
//! The paper stresses that Coterie is app-independent (§6 "Ease of
//! porting VR apps"): a developer supplies the scene and applies the
//! offline preprocessing; everything else — cutoff map, far-BE serving,
//! frame cache, prefetcher — is framework machinery. This example builds
//! a scene *from scratch* (no [`coterie_world::GameSpec`] involved), runs
//! the full preprocessing, and then drives a short play session through
//! the cache and prefetcher by hand.
//!
//! Run with:
//! ```text
//! cargo run --release --example port_new_game
//! ```

use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_core::{CacheConfig, CacheQuery, FrameCache, FrameMeta, FrameSource, Prefetcher};
use coterie_device::DeviceProfile;
use coterie_world::{
    scene::ReachableArea, GridSpec, ObjectId, ObjectKind, Rect, Scene, SceneObject, Terrain, Vec2,
    Vec3,
};

/// Step 1 — the developer's content: a small orchard world.
fn build_orchard() -> Scene {
    let width = 60.0;
    let depth = 60.0;
    let terrain = Terrain::new(123, 2.0, 25.0);
    let mut objects = Vec::new();
    let mut id = 0u32;
    // A regular orchard of trees plus a dense barn cluster in one corner.
    for row in 0..8 {
        for col in 0..8 {
            let p = Vec2::new(6.0 + row as f64 * 6.5, 6.0 + col as f64 * 6.5);
            objects.push(SceneObject {
                id: ObjectId(id),
                position: terrain.foothold(p),
                radius: 0.5,
                height: 5.0,
                triangles: 20_000,
                albedo: 0.35,
                kind: ObjectKind::Cylinder,
                texture_seed: id as u64 * 31,
            });
            id += 1;
        }
    }
    for k in 0..14 {
        let p = Vec2::new(48.0 + (k % 4) as f64 * 2.5, 48.0 + (k / 4) as f64 * 2.8);
        objects.push(SceneObject {
            id: ObjectId(id),
            position: Vec3::new(p.x, terrain.height(p), p.z),
            radius: 2.0,
            height: 4.0,
            triangles: 60_000,
            albedo: 0.55,
            kind: ObjectKind::Box,
            texture_seed: id as u64 * 31,
        });
        id += 1;
    }
    Scene::new(
        Rect::from_size(width, depth),
        terrain,
        objects,
        ReachableArea::All,
        GridSpec::covering(Vec2::ZERO, width, depth, 1.0 / 32.0),
    )
}

fn main() {
    let scene = build_orchard();
    println!(
        "orchard world: {} objects, {:.1}M grid points",
        scene.objects().len(),
        scene.reachable_grid_points() as f64 / 1e6
    );

    // Step 2 — offline preprocessing at install time (§6 step 1):
    // measure FI cost, then run the adaptive cutoff scheme.
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig {
        frame_budget_ms: coterie_device::FRAME_BUDGET_MS,
        fi_render_ms: 2.0, // measured for this app's simple FI
        k_samples: 10,
        rel_tolerance: 0.15,
        abs_tolerance_m: 0.5,
        min_radius_m: 1.0,
        max_radius_m: 200.0,
        max_depth: 6,
        safety_factor: 0.7,
    };
    let cutoffs = CutoffMap::compute(&scene, &device, &config, 1);
    println!("cutoff map: {}", cutoffs.stats());
    let dense = cutoffs.cutoff_at(Vec2::new(50.0, 50.0)).1;
    let sparse = cutoffs.cutoff_at(Vec2::new(30.0, 3.0)).1;
    println!("cutoff near the barns {dense:.1} m vs open field {sparse:.1} m");

    // Step 3 — play: walk a diagonal line; the frame cache and prefetcher
    // do the rest (§6 step 4: "apply all other Coterie modules as
    // plugins").
    let mut cache: FrameCache<()> = FrameCache::new(CacheConfig::default());
    let prefetcher = Prefetcher::default();
    let dir = Vec2::new(1.0, 1.0).normalized();
    let speed = 1.8; // m/s
    let mut fetches = 0usize;
    let mut prefetch_targets = 0usize;
    let steps = 900; // 15 s at 60 Hz
    let mut prev_gp = None;
    for s in 0..steps {
        let pos = Vec2::new(5.0, 5.0) + dir * (speed * s as f64 / 60.0);
        let gp = scene.grid().snap(pos);
        if prev_gp == Some(gp) {
            continue;
        }
        prev_gp = Some(gp);
        let (leaf, radius, dist_thresh) = cutoffs.lookup_params(pos);
        let near_hash = scene.near_set_hash(pos, radius);
        let query = CacheQuery {
            grid: gp,
            pos,
            leaf,
            near_hash,
            dist_thresh,
        };
        if cache.lookup(&query).is_none() {
            fetches += 1;
            cache.insert(
                FrameMeta {
                    grid: gp,
                    pos,
                    leaf,
                    near_hash,
                },
                FrameSource::SelfPrefetch,
                (),
                250_000,
                pos,
            );
        }
        // Plan the next prefetch window (Figure 10).
        let plan = prefetcher.plan(scene.grid(), pos, dir, dist_thresh);
        prefetch_targets += prefetcher.misses(&plan, &scene, &cutoffs, &cache).len();
    }
    let stats = cache.stats();
    println!(
        "session: {} frame requests, {fetches} server fetches ({:.1}% cache hits), \
         {prefetch_targets} prefetch targets planned",
        stats.hits + stats.misses,
        stats.hit_ratio() * 100.0
    );
    assert!(stats.hit_ratio() > 0.5, "the orchard should cache well");
    println!("ok — a new game ported with no framework changes");
}
