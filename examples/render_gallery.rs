//! Renders a gallery of viewable images: the whole BE, the near/far
//! split, the merged frame, a codec round-trip and a stereo pair —
//! written as PGM files you can open with any image viewer.
//!
//! Run with:
//! ```text
//! cargo run --release --example render_gallery
//! ls gallery/
//! ```

use coterie_codec::{Encoder, Quality};
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_device::DeviceProfile;
use coterie_frame::{save_pgm, ssim};
use coterie_render::{merge, Panorama, RenderFilter, Renderer, StereoOptions};
use coterie_world::{GameId, GameSpec};

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("gallery");
    std::fs::create_dir_all(out)?;

    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(42);
    let cutoffs = CutoffMap::compute(
        &scene,
        &DeviceProfile::pixel2(),
        &CutoffConfig::for_spec(&spec),
        42,
    );
    let renderer = Renderer::default();
    let pos = scene.bounds().center();
    let (_, radius, _) = cutoffs.lookup_params(pos);
    let eye = scene.eye(pos);

    // The three layers of Figure 4.
    let whole = renderer.render_panorama(&scene, eye, RenderFilter::All);
    let near = renderer.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: radius });
    let far = renderer.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: radius });
    save_pgm(&whole.frame, out.join("01_whole_be.pgm"))?;
    save_pgm(&near.frame, out.join("02_near_be.pgm"))?;
    save_pgm(&far.frame, out.join("03_far_be.pgm"))?;

    // Codec round trip of the far layer (what the phone actually decodes).
    let encoder = Encoder::new(Quality::CRF25);
    let decoded = encoder
        .decode(&encoder.encode(&far.frame))
        .expect("server frames decode");
    save_pgm(&decoded, out.join("04_far_be_decoded.pgm"))?;

    // Merge: near over decoded far — the displayed panorama.
    let far_layer = Panorama {
        mask: vec![1; decoded.pixel_count()],
        frame: decoded,
    };
    let merged = merge(&near, &far_layer);
    save_pgm(&merged, out.join("05_merged.pgm"))?;
    println!(
        "merged vs whole SSIM: {:.4} (cutoff {radius:.1} m)",
        ssim(&merged, &whole.frame)
    );

    // A stereo pair at one head pose (the Daydream projection step).
    let stereo = StereoOptions::default().project(&merged, 0.4, -0.05);
    save_pgm(&stereo.side_by_side(), out.join("06_stereo_pair.pgm"))?;

    println!("wrote 6 images to {}/", out.display());
    Ok(())
}
