//! Quickstart: the Coterie pipeline on one Viking Village frame.
//!
//! Walks the whole per-frame path of the paper's Figure 9 for a single
//! grid point: adaptive cutoff lookup → near-BE render on the "phone" →
//! far-BE render + encode on the "server" → decode → merge → quality
//! check against a ground-truth render.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use coterie_codec::{Encoder, Quality};
use coterie_core::cutoff::{CutoffConfig, CutoffMap};
use coterie_device::DeviceProfile;
use coterie_frame::ssim;
use coterie_render::{merge, Panorama, RenderFilter, Renderer};
use coterie_world::{GameId, GameSpec};

fn main() {
    // 1. Build the virtual world (the paper ports Viking Village from the
    //    Unity Asset Store; we generate its procedural twin).
    let spec = GameSpec::for_game(GameId::VikingVillage);
    let scene = spec.build_scene(42);
    println!(
        "world: {} ({}x{} m, {} objects, {:.1}M reachable grid points)",
        spec.id,
        spec.width,
        spec.depth,
        scene.objects().len(),
        scene.reachable_grid_points() as f64 / 1e6
    );

    // 2. Offline preprocessing: the adaptive cutoff scheme (§4.3).
    let device = DeviceProfile::pixel2();
    let config = CutoffConfig::for_spec(&spec);
    let cutoffs = CutoffMap::compute(&scene, &device, &config, 42);
    let stats = cutoffs.stats();
    println!(
        "adaptive cutoff: {} leaf regions, quadtree depth {:.2}/{}, {} calculations (~{:.2} h modeled)",
        stats.leaf_count,
        stats.avg_depth,
        stats.max_depth,
        cutoffs.calc_count(),
        cutoffs.modeled_processing_hours()
    );

    // 3. One frame at the world center.
    let pos = scene.bounds().center();
    let (leaf, radius, dist_thresh) = cutoffs.lookup_params(pos);
    println!("at {pos}: {leaf}, cutoff {radius:.1} m, dist_thresh {dist_thresh:.2} m");

    let renderer = Renderer::default();
    let eye = scene.eye(pos);

    // Phone side: FI + near BE rendered locally within Constraint 1.
    let near = renderer.render_panorama(&scene, eye, RenderFilter::NearOnly { cutoff: radius });
    let near_tris = scene.triangles_within(pos, radius);
    println!(
        "near BE: {near_tris} triangles -> {:.1} ms on {} (budget {:.1} ms)",
        device.render_ms(near_tris),
        device.name,
        config.near_budget_ms()
    );

    // Server side: far BE pre-rendered and encoded with the x264 stand-in.
    let far = renderer.render_panorama(&scene, eye, RenderFilter::FarOnly { cutoff: radius });
    let encoder = Encoder::new(Quality::CRF25);
    let encoded = encoder.encode(&far.frame);
    println!(
        "far BE: {} bytes encoded at simulation resolution ({}x{})",
        encoded.size_bytes(),
        far.frame.width(),
        far.frame.height()
    );

    // Phone again: decode, merge, display.
    let decoded = encoder
        .decode(&encoded)
        .expect("server frames always decode");
    let far_layer = Panorama {
        mask: vec![1; decoded.pixel_count()],
        frame: decoded,
    };
    let merged = merge(&near, &far_layer);

    // Quality check against a fully local render (Table 7's ground truth).
    let ground_truth = renderer.render_panorama(&scene, eye, RenderFilter::All);
    let quality = ssim(&merged, &ground_truth.frame);
    println!("merged-frame SSIM vs ground truth: {quality:.4} (>0.9 is 'good' visual quality)");
    assert!(quality > 0.9, "quickstart should produce a good frame");
    println!("ok");
}
