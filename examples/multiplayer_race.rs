//! Four-player Racing Mountain under all four system designs.
//!
//! Reproduces the paper's motivating scenario — the multiplayer scaling
//! problem (§3) and Coterie's answer (§7.2) — on one racing session:
//! Multi-Furion's FPS collapses as the shared 802.11ac downlink
//! saturates, while Coterie's frame cache keeps all four players at
//! 60 FPS.
//!
//! Run with:
//! ```text
//! cargo run --release --example multiplayer_race
//! ```

use coterie_sim::{Session, SessionConfig, SystemKind};
use coterie_world::GameId;

fn main() {
    let systems = [
        SystemKind::Mobile,
        SystemKind::ThinClient,
        SystemKind::multi_furion(),
        SystemKind::coterie(),
    ];
    println!("Racing Mountain, 4 players, 60 s simulated on Pixel-2-class phones over 802.11ac\n");
    println!(
        "{:<20} {:>5} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "system", "FPS", "frame (ms)", "CPU (%)", "GPU (%)", "BE (Mbps)", "hit (%)"
    );
    let mut coterie_fps = 0.0;
    let mut furion_fps = 0.0;
    for system in systems {
        let config = SessionConfig::new(GameId::RacingMountain, system, 4)
            .with_duration_s(60.0)
            .with_seed(11);
        let report = Session::new(config).run();
        let m = report.aggregate();
        println!(
            "{:<20} {:>5.0} {:>12.1} {:>10.1} {:>10.1} {:>12.1} {:>10.1}",
            system.label(),
            m.avg_fps,
            m.inter_frame_ms,
            m.cpu_load * 100.0,
            m.gpu_load * 100.0,
            m.be_mbps * report.players.len() as f64,
            m.cache_hit_ratio * 100.0
        );
        match system {
            SystemKind::Coterie { cache: true } => coterie_fps = m.avg_fps,
            SystemKind::MultiFurion { cache: false } => furion_fps = m.avg_fps,
            _ => {}
        }
    }
    println!();
    println!(
        "Coterie sustains {coterie_fps:.0} FPS where Multi-Furion reaches {furion_fps:.0} FPS — \
         the paper's Figure 11 scaling result."
    );
    assert!(
        coterie_fps > furion_fps,
        "Coterie should outscale Multi-Furion"
    );
}
